"""Local Outlier Factor (Breunig et al., SIGMOD 2000) — reference [3] of the paper.

LOF compares the local density around a query point with the local densities
around its ``k`` nearest neighbours:

* ``LOF ≈ 1``  — the point sits inside a cluster of "regular" points;
* ``LOF ≫ 1``  — the point is in a sparser region than its neighbours, i.e.
  it is likely an outlier (the paper records the window when
  ``LOF ≥ alpha > 1``).

The implementation follows the original definitions:

``k_distance(o)``
    distance from ``o`` to its ``k``-th nearest neighbour (within the model).
``reach_dist_k(p, o) = max(k_distance(o), d(p, o))``
    reachability distance of ``p`` from ``o``.
``lrd_k(p) = k / sum_o reach_dist_k(p, o)``
    local reachability density of ``p``.
``LOF_k(p) = mean_o( lrd_k(o) ) / lrd_k(p)``
    the Local Outlier Factor.

Duplicated points would make ``lrd`` infinite; a small epsilon keeps every
quantity finite while preserving the ordering of scores.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError, NotFittedError
from .knn import (
    KNN_BACKENDS,
    BruteForceKnn,
    BallTreeKnn,
    GridSimplexKnn,
    KdTreeKnn,
    KnnIndex,
    make_index,
)

__all__ = ["LocalOutlierFactor"]

_EPSILON = 1e-12

_INDEX_KINDS = {
    BruteForceKnn: "brute",
    KdTreeKnn: "kdtree",
    GridSimplexKnn: "grid",
    BallTreeKnn: "balltree",
}


class LocalOutlierFactor:
    """Local Outlier Factor scorer over a growable reference point set.

    Parameters
    ----------
    k_neighbours:
        Number of neighbours (``K`` in the paper; its experiment uses 20).
    index_kind:
        One of the :data:`~repro.analysis.knn.KNN_BACKENDS` names or
        ``"auto"`` (brute force below the crossover reference size, blocked
        ball tree above it).  Every backend is exact and returns
        bit-identical scores, see :mod:`repro.analysis.knn`.
    """

    def __init__(self, k_neighbours: int = 20, index_kind: str = "brute") -> None:
        if k_neighbours < 1:
            raise ModelError("k_neighbours must be >= 1")
        if index_kind != "auto" and index_kind not in KNN_BACKENDS:
            raise ModelError(f"unknown index kind: {index_kind!r}")
        self.k_neighbours = int(k_neighbours)
        self.index_kind = index_kind
        self._index: KnnIndex | None = None
        self._k_distances: np.ndarray | None = None
        self._lrd: np.ndarray | None = None
        self._training_scores: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(self, points: np.ndarray) -> "LocalOutlierFactor":
        """Fit the model on the reference points (one row per pmf vector)."""
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise ModelError(f"points must be 2-D, got shape {points.shape}")
        if len(points) <= self.k_neighbours:
            raise ModelError(
                f"need more than k_neighbours={self.k_neighbours} reference points, "
                f"got {len(points)}"
            )
        self._index = make_index(self.index_kind, points)
        self._finalise_fit()
        return self

    def partial_fit(self, new_points: np.ndarray) -> "LocalOutlierFactor":
        """Absorb additional reference points into the fitted model.

        The index grows incrementally (no rebuild for the backends that
        support it) and the LOF quantities — k-distances, local reachability
        densities, training scores — are recomputed over the combined point
        set, so scoring behaves exactly as if :meth:`fit` had been called on
        all points at once.
        """
        index = self._require_fitted()
        new_points = np.atleast_2d(np.asarray(new_points, dtype=float))
        if new_points.size == 0:
            return self
        index.add_points(new_points)
        self._finalise_fit()
        return self

    def _finalise_fit(self) -> None:
        """(Re)compute the per-reference-point LOF quantities."""
        assert self._index is not None
        points = self._index.points
        k = self.k_neighbours
        # Ask for k + 1 because the point itself (distance 0) is usually among
        # the returned neighbours when querying with a fitted point.  With
        # duplicated points the tie-broken top k + 1 may *exclude* the point
        # itself, in which case the first k non-self entries are still exact.
        all_distances, all_indices = self._index.query_many(points, k + 1)
        neighbour_distances, neighbour_indices = self._drop_self_neighbours(
            points, all_distances, all_indices, k
        )

        self._k_distances = neighbour_distances[:, -1].copy()

        # Local reachability densities of the training points.
        reach = np.maximum(self._k_distances[neighbour_indices], neighbour_distances)
        self._lrd = self.k_neighbours / np.maximum(reach.sum(axis=1), _EPSILON)

        # LOF of the training points themselves (useful diagnostics and the
        # basis for contamination-style threshold calibration).
        neighbour_lrd = self._lrd[neighbour_indices]
        self._training_scores = neighbour_lrd.mean(axis=1) / np.maximum(self._lrd, _EPSILON)

    def _drop_self_neighbours(
        self,
        points: np.ndarray,
        distances: np.ndarray,
        indices: np.ndarray,
        k: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Remove each training point from its own neighbour list.

        A stable argsort on the "is self" mask pushes the (at most one) self
        entry to the back of each row while preserving distance order, so the
        first ``k`` columns are the k true neighbours — whether or not the
        point itself made the tie-broken top ``k + 1``.  If an index
        implementation ever returns fewer than ``k + 1`` neighbours (e.g.
        heavily duplicated points colliding with the self exclusion), the
        affected rows fall back to re-querying with a progressively larger k
        instead of crashing on an empty distance row.
        """
        n = len(points)
        if distances.shape[1] <= k:
            # Defensive fallback for indexes that returned short rows: widen
            # the query until every row has k non-self neighbours available.
            assert self._index is not None
            wider = 2 * k + 2
            while distances.shape[1] <= k and wider <= 2 * (self._index.n_points + 1):
                distances, indices = self._index.query_many(points, wider)
                wider *= 2
            if distances.shape[1] <= k:
                raise ModelError(
                    f"k-NN index returned only {distances.shape[1]} neighbours "
                    f"per point; need at least {k + 1} to fit LOF"
                )
        self_mask = indices == np.arange(n)[:, None]
        order = np.argsort(self_mask, axis=1, kind="stable")
        rows = np.arange(n)[:, None]
        return (
            distances[rows, order][:, :k],
            indices[rows, order][:, :k],
        )

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._index is not None

    def _require_fitted(self) -> KnnIndex:
        if self._index is None or self._k_distances is None or self._lrd is None:
            raise NotFittedError("LocalOutlierFactor.score() called before fit()")
        return self._index

    @property
    def n_reference_points(self) -> int:
        """Number of reference points the model was fitted on."""
        return self._require_fitted().n_points

    @property
    def resolved_index_kind(self) -> str:
        """Concrete backend in use (resolves what ``"auto"`` picked)."""
        return _INDEX_KINDS[type(self._require_fitted())]

    @property
    def reference_points(self) -> np.ndarray:
        """The fitted reference points, including any added incrementally."""
        return self._require_fitted().points.copy()

    @property
    def training_scores(self) -> np.ndarray:
        """LOF scores of the reference points themselves."""
        self._require_fitted()
        assert self._training_scores is not None
        return self._training_scores.copy()

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def score(self, point: np.ndarray) -> float:
        """LOF score of a single query point against the reference set."""
        point = np.asarray(point, dtype=float).reshape(-1)
        return float(self.score_many(point[None, :])[0])

    def score_many(self, points: np.ndarray) -> np.ndarray:
        """LOF scores of several query points (one row per point).

        Fully vectorised: one multi-query k-NN search, then the reachability
        and density formulas as row-wise matrix expressions.  Each row's
        score is independent of the other rows, so batching never changes a
        result.
        """
        index = self._require_fitted()
        assert self._k_distances is not None and self._lrd is not None
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if len(points) == 0:
            return np.empty(0)
        distances, indices = index.query_many(points, self.k_neighbours)
        reach = np.maximum(self._k_distances[indices], distances)
        k_effective = indices.shape[1]
        lrd_query = k_effective / np.maximum(reach.sum(axis=1), _EPSILON)
        neighbour_lrd = self._lrd[indices]
        return neighbour_lrd.mean(axis=1) / np.maximum(lrd_query, _EPSILON)

    def is_anomalous(self, point: np.ndarray, alpha: float) -> bool:
        """Whether ``point`` exceeds the LOF threshold ``alpha``."""
        if alpha <= 0:
            raise ModelError("alpha must be positive")
        return self.score(point) >= alpha

    def threshold_for_quantile(self, quantile: float) -> float:
        """LOF value below which ``quantile`` of the reference points fall.

        Useful to pick ``alpha`` automatically: e.g. the 0.995 quantile of
        the training scores gives a threshold that flags at most ~0.5 % of
        reference-like windows.
        """
        if not 0.0 < quantile <= 1.0:
            raise ModelError("quantile must be in (0, 1]")
        self._require_fitted()
        assert self._training_scores is not None
        return float(np.quantile(self._training_scores, quantile))
