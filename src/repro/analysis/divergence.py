"""Divergences and distances between probability mass functions.

The paper compares the current window's pmf with the running past pmf using
the Kullback-Leibler divergence (reference [4] of the paper).  KL is not
symmetric and blows up when the second argument has zero-probability
components, so the implementation:

* applies additive (Laplace) smoothing before taking logarithms, and
* also provides the symmetrised KL, the Jensen-Shannon divergence and the
  total-variation distance, which the ablation benchmarks use to check that
  the choice of divergence is not what makes the approach work.

All functions accept either :class:`~repro.analysis.pmf.Pmf` objects or raw
probability vectors (anything :func:`numpy.asarray` accepts).
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .pmf import Pmf

__all__ = [
    "kl_divergence",
    "symmetric_kl_divergence",
    "js_divergence",
    "total_variation_distance",
    "hellinger_distance",
]

_DEFAULT_SMOOTHING = 1e-9


def _raw_vector(value) -> tuple[np.ndarray, bool]:
    """Return ``(raw non-negative vector, is_pmf)`` for ``value``."""
    if isinstance(value, Pmf):
        return value.counts, True
    array = np.asarray(value, dtype=float)
    if array.ndim != 1:
        raise ModelError(f"distributions must be one-dimensional, got shape {array.shape}")
    if np.any(array < 0):
        raise ModelError("distributions must be non-negative")
    return array, False


def _as_distributions(p, q, smoothing: float) -> tuple[np.ndarray, np.ndarray]:
    """Convert both arguments to smoothed, normalised, same-length vectors.

    Two :class:`~repro.analysis.pmf.Pmf` arguments may have different lengths
    because the shared event-type registry grows over time; the shorter one is
    zero-padded (the missing types simply never occurred).  Plain vectors must
    have equal lengths — a mismatch there is a caller bug, not registry growth.
    """
    if smoothing < 0:
        raise ModelError("smoothing must be >= 0")
    p_raw, p_is_pmf = _raw_vector(p)
    q_raw, q_is_pmf = _raw_vector(q)
    if len(p_raw) != len(q_raw):
        if not (p_is_pmf and q_is_pmf):
            raise ModelError(
                f"distribution lengths differ: {len(p_raw)} vs {len(q_raw)}"
            )
        size = max(len(p_raw), len(q_raw))
        p_raw = np.pad(p_raw, (0, size - len(p_raw)))
        q_raw = np.pad(q_raw, (0, size - len(q_raw)))

    def _normalise(raw: np.ndarray) -> np.ndarray:
        values = raw + smoothing
        total = values.sum()
        if total <= 0:
            raise ModelError("distribution must have positive mass")
        return values / total

    return _normalise(p_raw), _normalise(q_raw)


def kl_divergence(p, q, smoothing: float = _DEFAULT_SMOOTHING) -> float:
    """Kullback-Leibler divergence ``D(p || q)`` in nats.

    Both arguments are smoothed and normalised first, so the result is always
    finite.  KL is asymmetric: ``kl_divergence(p, q) != kl_divergence(q, p)``
    in general.
    """
    p_vec, q_vec = _as_distributions(p, q, smoothing)
    return float(np.sum(p_vec * (np.log(p_vec) - np.log(q_vec))))


def symmetric_kl_divergence(p, q, smoothing: float = _DEFAULT_SMOOTHING) -> float:
    """Symmetrised KL divergence ``(D(p||q) + D(q||p)) / 2``.

    This is the quantity the online detector actually thresholds: the paper
    speaks of the "Kullback-Leibler distance", which in practice means a
    symmetrised form so the comparison does not depend on the argument order.
    """
    return 0.5 * (kl_divergence(p, q, smoothing) + kl_divergence(q, p, smoothing))


def js_divergence(p, q, smoothing: float = _DEFAULT_SMOOTHING) -> float:
    """Jensen-Shannon divergence (bounded by ``log 2``, symmetric)."""
    p_vec, q_vec = _as_distributions(p, q, smoothing)
    mixture = 0.5 * (p_vec + q_vec)
    return 0.5 * (
        float(np.sum(p_vec * (np.log(p_vec) - np.log(mixture))))
        + float(np.sum(q_vec * (np.log(q_vec) - np.log(mixture))))
    )


def total_variation_distance(p, q, smoothing: float = 0.0) -> float:
    """Total-variation distance ``0.5 * sum |p - q|`` (in [0, 1])."""
    p_vec, q_vec = _as_distributions(
        p, q, smoothing if smoothing > 0 else _DEFAULT_SMOOTHING
    )
    return 0.5 * float(np.abs(p_vec - q_vec).sum())


def hellinger_distance(p, q, smoothing: float = _DEFAULT_SMOOTHING) -> float:
    """Hellinger distance (in [0, 1]); sometimes used instead of KL for pmfs."""
    p_vec, q_vec = _as_distributions(p, q, smoothing)
    return float(np.sqrt(0.5 * np.sum((np.sqrt(p_vec) - np.sqrt(q_vec)) ** 2)))
