"""Divergences and distances between probability mass functions.

The paper compares the current window's pmf with the running past pmf using
the Kullback-Leibler divergence (reference [4] of the paper).  KL is not
symmetric and blows up when the second argument has zero-probability
components, so the implementation:

* applies additive (Laplace) smoothing before taking logarithms, and
* also provides the symmetrised KL, the Jensen-Shannon divergence and the
  total-variation distance, which the ablation benchmarks use to check that
  the choice of divergence is not what makes the approach work.

All functions accept either :class:`~repro.analysis.pmf.Pmf` objects or raw
probability vectors (anything :func:`numpy.asarray` accepts).
"""

from __future__ import annotations

import numpy as np

from numpy.typing import ArrayLike

from ..errors import ModelError
from .pmf import Pmf, _zero_extended

#: Anything accepted as a distribution: a Pmf or raw weights array-like.
DistributionLike = "Pmf | ArrayLike"


__all__ = [
    "kl_divergence",
    "symmetric_kl_divergence",
    "kl_divergence_matrix",
    "symmetric_kl_divergence_matrix",
    "js_divergence",
    "total_variation_distance",
    "hellinger_distance",
]

_DEFAULT_SMOOTHING = 1e-9


def _smooth_normalise(raw: np.ndarray, smoothing: float) -> np.ndarray:
    """Additively smooth and normalise a raw non-negative vector."""
    values = raw + smoothing
    total = values.sum()
    if total <= 0:
        raise ModelError("distribution must have positive mass")
    return values / total


def _raw_vector(value: DistributionLike) -> tuple[np.ndarray, bool]:
    """Return ``(raw non-negative vector, is_pmf)`` for ``value``."""
    if isinstance(value, Pmf):
        return value.counts, True
    array = np.asarray(value, dtype=float)
    if array.ndim != 1:
        raise ModelError(f"distributions must be one-dimensional, got shape {array.shape}")
    if np.any(array < 0):
        raise ModelError("distributions must be non-negative")
    return array, False


def _as_distributions(
    p: DistributionLike, q: DistributionLike, smoothing: float
) -> tuple[np.ndarray, np.ndarray]:
    """Convert both arguments to smoothed, normalised, same-length vectors.

    Two :class:`~repro.analysis.pmf.Pmf` arguments may have different lengths
    because the shared event-type registry grows over time; the shorter one is
    zero-padded (the missing types simply never occurred).  Plain vectors must
    have equal lengths — a mismatch there is a caller bug, not registry growth.
    """
    if smoothing < 0:
        raise ModelError("smoothing must be >= 0")
    p_raw, p_is_pmf = _raw_vector(p)
    q_raw, q_is_pmf = _raw_vector(q)
    if len(p_raw) != len(q_raw):
        if not (p_is_pmf and q_is_pmf):
            raise ModelError(
                f"distribution lengths differ: {len(p_raw)} vs {len(q_raw)}"
            )
        size = max(len(p_raw), len(q_raw))
        p_raw = np.pad(p_raw, (0, size - len(p_raw)))
        q_raw = np.pad(q_raw, (0, size - len(q_raw)))

    return _smooth_normalise(p_raw, smoothing), _smooth_normalise(q_raw, smoothing)


def kl_divergence(p: DistributionLike, q: DistributionLike, smoothing: float = _DEFAULT_SMOOTHING) -> float:
    """Kullback-Leibler divergence ``D(p || q)`` in nats.

    Both arguments are smoothed and normalised first, so the result is always
    finite.  KL is asymmetric: ``kl_divergence(p, q) != kl_divergence(q, p)``
    in general.
    """
    p_vec, q_vec = _as_distributions(p, q, smoothing)
    return float(np.sum(p_vec * (np.log(p_vec) - np.log(q_vec))))


def symmetric_kl_divergence(p: DistributionLike, q: DistributionLike, smoothing: float = _DEFAULT_SMOOTHING) -> float:
    """Symmetrised KL divergence ``(D(p||q) + D(q||p)) / 2``.

    This is the quantity the online detector actually thresholds: the paper
    speaks of the "Kullback-Leibler distance", which in practice means a
    symmetrised form so the comparison does not depend on the argument order.
    """
    return 0.5 * (kl_divergence(p, q, smoothing) + kl_divergence(q, p, smoothing))


def _symmetric_kl_raw(
    p_raw: np.ndarray, q_raw: np.ndarray, smoothing: float
) -> float:
    """Symmetric KL between two raw count vectors, padded to a common length.

    This is the hot-loop form used by the batched detector: no ``Pmf``
    wrapping, but the exact op sequence of ``symmetric_kl_divergence`` on two
    pmfs, so serial and batched runs produce bit-identical divergences.
    """
    size = max(len(p_raw), len(q_raw))
    p_raw = _zero_extended(p_raw, size)
    q_raw = _zero_extended(q_raw, size)
    p_vec = _smooth_normalise(p_raw, smoothing)
    q_vec = _smooth_normalise(q_raw, smoothing)
    log_p = np.log(p_vec)
    log_q = np.log(q_vec)
    kl_pq = float(np.sum(p_vec * (log_p - log_q)))
    kl_qp = float(np.sum(q_vec * (log_q - log_p)))
    return 0.5 * (kl_pq + kl_qp)


def _rows_and_reference(
    p_rows: ArrayLike, q: DistributionLike, smoothing: float
) -> tuple[np.ndarray, np.ndarray]:
    """Validate and smooth-normalise a row matrix and a reference vector."""
    if smoothing < 0:
        raise ModelError("smoothing must be >= 0")
    rows = np.atleast_2d(np.asarray(p_rows, dtype=float))
    if rows.ndim != 2:
        raise ModelError(f"p_rows must be two-dimensional, got shape {rows.shape}")
    if np.any(rows < 0):
        raise ModelError("distributions must be non-negative")
    q_raw, _ = _raw_vector(q)
    size = max(rows.shape[1], len(q_raw))
    if rows.shape[1] < size:
        rows = np.pad(rows, ((0, 0), (0, size - rows.shape[1])))
    if len(q_raw) < size:
        q_raw = np.pad(q_raw, (0, size - len(q_raw)))
    values = rows + smoothing
    totals = values.sum(axis=1)
    if np.any(totals <= 0):
        raise ModelError("distribution must have positive mass")
    return values / totals[:, None], _smooth_normalise(q_raw, smoothing)


def kl_divergence_matrix(p_rows: ArrayLike, q: DistributionLike, smoothing: float = _DEFAULT_SMOOTHING) -> np.ndarray:
    """Row-wise KL divergence ``D(p_i || q)`` for a matrix of distributions.

    ``p_rows`` is one distribution (raw counts or probabilities) per row;
    ``q`` is a single reference distribution (or :class:`Pmf`).  Widths are
    zero-padded to match, mirroring the pmf semantics of registry growth.
    """
    p_mat, q_vec = _rows_and_reference(p_rows, q, smoothing)
    return np.sum(p_mat * (np.log(p_mat) - np.log(q_vec)[None, :]), axis=1)


def symmetric_kl_divergence_matrix(
    p_rows: ArrayLike, q: DistributionLike, smoothing: float = _DEFAULT_SMOOTHING
) -> np.ndarray:
    """Row-wise symmetrised KL divergence against one reference distribution.

    Vectorised form of :func:`symmetric_kl_divergence` used by the batched
    KL gate: one matrix expression instead of one Python call per window.
    """
    p_mat, q_vec = _rows_and_reference(p_rows, q, smoothing)
    log_p = np.log(p_mat)
    log_q = np.log(q_vec)
    forward = np.sum(p_mat * (log_p - log_q[None, :]), axis=1)
    backward = np.sum(q_vec[None, :] * (log_q[None, :] - log_p), axis=1)
    return 0.5 * (forward + backward)


def js_divergence(p: DistributionLike, q: DistributionLike, smoothing: float = _DEFAULT_SMOOTHING) -> float:
    """Jensen-Shannon divergence (bounded by ``log 2``, symmetric)."""
    p_vec, q_vec = _as_distributions(p, q, smoothing)
    mixture = 0.5 * (p_vec + q_vec)
    return 0.5 * (
        float(np.sum(p_vec * (np.log(p_vec) - np.log(mixture))))
        + float(np.sum(q_vec * (np.log(q_vec) - np.log(mixture))))
    )


def total_variation_distance(p: DistributionLike, q: DistributionLike, smoothing: float = 0.0) -> float:
    """Total-variation distance ``0.5 * sum |p - q|`` (in [0, 1])."""
    p_vec, q_vec = _as_distributions(
        p, q, smoothing if smoothing > 0 else _DEFAULT_SMOOTHING
    )
    return 0.5 * float(np.abs(p_vec - q_vec).sum())


def hellinger_distance(p: DistributionLike, q: DistributionLike, smoothing: float = _DEFAULT_SMOOTHING) -> float:
    """Hellinger distance (in [0, 1]); sometimes used instead of KL for pmfs."""
    p_vec, q_vec = _as_distributions(p, q, smoothing)
    return float(np.sqrt(0.5 * np.sum((np.sqrt(p_vec) - np.sqrt(q_vec)) ** 2)))
