"""Detection-quality metrics (precision, recall, ...) and trace-size metrics.

The paper evaluates its approach with precision and recall over the window
labels (Figure 1) and with the recorded-vs-full trace size (the 14-fold
reduction).  This module provides both, plus the usual derived quantities
(F1, accuracy, false-positive rate) used by the ablation benchmarks.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from ..errors import LabelingError
from .labeling import WindowLabel
from .recorder import RecorderReport

__all__ = [
    "ConfusionCounts",
    "DetectionMetrics",
    "compute_metrics",
    "reduction_factor",
]


@dataclass(frozen=True)
class ConfusionCounts:
    """Confusion-matrix counts over monitored windows."""

    tp: int = 0
    fp: int = 0
    fn: int = 0
    tn: int = 0

    def __post_init__(self) -> None:
        if min(self.tp, self.fp, self.fn, self.tn) < 0:
            raise LabelingError("confusion counts must be non-negative")

    @classmethod
    def from_labels(cls, labels: Iterable[WindowLabel]) -> "ConfusionCounts":
        """Aggregate a label sequence into counts."""
        counter = Counter(labels)
        return cls(
            tp=counter.get(WindowLabel.TRUE_POSITIVE, 0),
            fp=counter.get(WindowLabel.FALSE_POSITIVE, 0),
            fn=counter.get(WindowLabel.FALSE_NEGATIVE, 0),
            tn=counter.get(WindowLabel.TRUE_NEGATIVE, 0),
        )

    @property
    def total(self) -> int:
        """Total number of labelled windows."""
        return self.tp + self.fp + self.fn + self.tn

    @property
    def precision(self) -> float:
        """``TP / (TP + FP)`` — fraction of flagged windows that were real anomalies.

        Defined as 0.0 when nothing was flagged (conservative convention).
        """
        denominator = self.tp + self.fp
        return self.tp / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        """``TP / (TP + FN)`` — fraction of real anomalies that were flagged.

        Defined as 1.0 when there was nothing to detect.
        """
        denominator = self.tp + self.fn
        return self.tp / denominator if denominator else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0

    @property
    def accuracy(self) -> float:
        """``(TP + TN) / total`` (0 for an empty label set)."""
        return (self.tp + self.tn) / self.total if self.total else 0.0

    @property
    def false_positive_rate(self) -> float:
        """``FP / (FP + TN)`` (0 when there were no negatives)."""
        denominator = self.fp + self.tn
        return self.fp / denominator if denominator else 0.0

    def __add__(self, other: "ConfusionCounts") -> "ConfusionCounts":
        return ConfusionCounts(
            tp=self.tp + other.tp,
            fp=self.fp + other.fp,
            fn=self.fn + other.fn,
            tn=self.tn + other.tn,
        )


@dataclass(frozen=True)
class DetectionMetrics:
    """Detection quality together with the trace-size outcome."""

    counts: ConfusionCounts
    recorded_bytes: int = 0
    total_bytes: int = 0

    @property
    def precision(self) -> float:
        """See :attr:`ConfusionCounts.precision`."""
        return self.counts.precision

    @property
    def recall(self) -> float:
        """See :attr:`ConfusionCounts.recall`."""
        return self.counts.recall

    @property
    def f1(self) -> float:
        """See :attr:`ConfusionCounts.f1`."""
        return self.counts.f1

    @property
    def reduction_factor(self) -> float:
        """Full-trace bytes divided by recorded bytes (see the paper's 14x)."""
        return reduction_factor(self.total_bytes, self.recorded_bytes)

    def to_dict(self) -> dict:
        """JSON-serialisable form used by reports and benchmarks."""
        return {
            "tp": self.counts.tp,
            "fp": self.counts.fp,
            "fn": self.counts.fn,
            "tn": self.counts.tn,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "recorded_bytes": self.recorded_bytes,
            "total_bytes": self.total_bytes,
            "reduction_factor": self.reduction_factor,
        }


def compute_metrics(
    labels: Iterable[WindowLabel],
    report: RecorderReport | None = None,
) -> DetectionMetrics:
    """Compute :class:`DetectionMetrics` from labels and an optional recorder report."""
    counts = ConfusionCounts.from_labels(labels)
    if report is None:
        return DetectionMetrics(counts=counts)
    return DetectionMetrics(
        counts=counts,
        recorded_bytes=report.recorded_bytes,
        total_bytes=report.total_bytes,
    )


def reduction_factor(total_bytes: int, recorded_bytes: int) -> float:
    """Trace-size reduction factor, with the same conventions as the recorder."""
    if total_bytes < 0 or recorded_bytes < 0:
        raise LabelingError("byte counts must be non-negative")
    if total_bytes == 0:
        return 1.0
    if recorded_bytes == 0:
        return float("inf")
    return total_bytes / recorded_bytes
