"""``repro-trace`` command line interface.

Subcommands::

    repro-trace simulate   --duration 900 --output trace.jsonl [--qos qos.json]
    repro-trace stats      trace.jsonl
    repro-trace learn      trace.jsonl --reference-s 300 --model model.npz
    repro-trace monitor    trace.jsonl --model model.npz --output recorded.jsonl
    repro-trace fleet      a.jsonl b.jsonl --model model.npz --output-dir recorded/ [--workers 4]
    repro-trace experiment --duration 900 [--alpha 1.2] [--report report.txt]
    repro-trace sweep      --duration 900 --alphas 1.0,1.2,1.5,2.0,3.0

``monitor`` and ``fleet`` read trace files through the columnar ingest plane
by default (``--ingest columnar``): vectorized decode into flat arrays,
array-native windowing and a bounded decode/score overlap
(``--prefetch``).  ``--ingest objects`` restores the per-event object path;
results are bit-identical either way.  ``--recording-format binary`` writes
recorded windows as compact binary segments whose body bytes equal the
accounted window sizes.  ``monitor --follow`` tails a trace file that is
still being appended (streaming columnar ingest, bounded memory) and stops
once the file has been idle for ``--idle-timeout`` seconds; the results are
bit-identical to a one-shot run over the final file.

``fleet --failure-policy isolate`` keeps healthy shards running when a
sibling fails (optionally retrying failures with ``--shard-retries`` /
``--retry-backoff``); ``monitor --follow --on-corrupt skip`` quarantines
mangled records in the tailed stream instead of aborting.

Every subcommand prints a plain-text report on stdout; ``--json`` switches to
machine-readable JSON output.  Exit codes: ``0`` for a clean run, ``2`` for
an error, ``3`` for a *degraded* run — the command completed and produced
output, but some shards failed under ``--failure-policy isolate`` or corrupt
records were skipped under ``--on-corrupt skip``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

import numpy as np

from ..analysis.fleet import ShardedTraceMonitor
from ..analysis.model import ReferenceModel
from ..analysis.monitor import TraceMonitor
from ..config import DetectorConfig, EnduranceConfig, MonitorConfig
from ..errors import ConfigurationError, ReproError
from ..experiments.endurance import run_endurance_experiment
from ..experiments.report import render_alpha_sweep, render_headline
from ..experiments.sweep import alpha_sweep
from ..logging_util import configure_logging
from ..media.app import EnduranceRun
from ..trace.event import EventTypeRegistry
from ..trace.reader import read_trace, read_trace_columns
from ..trace.stats import summarize
from ..trace.stream import (
    TraceStream,
    column_windows_by_duration,
    materialize_layout_windows,
)
from ..trace.writer import write_trace

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    """Argparse type: integer >= 1, rejected with a clear message."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer (got {text!r})")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1 (got {value})")
    return value


def _non_negative_int(text: str) -> int:
    """Argparse type: integer >= 0 (0 = disabled), rejected clearly."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer (got {text!r})")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0 (got {value})")
    return value


def _positive_float(text: str) -> float:
    """Argparse type: float > 0, rejected with a clear message."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number (got {text!r})")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0 (got {value})")
    return value


def _non_negative_float(text: str) -> float:
    """Argparse type: float >= 0, rejected with a clear message."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number (got {text!r})")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0 (got {value})")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Online trace-size reduction for multimedia endurance tests",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0)
    parser.add_argument("--json", action="store_true", help="emit JSON instead of text")
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser("simulate", help="simulate an endurance run")
    simulate.add_argument("--duration", type=float, default=900.0, help="run length in seconds")
    simulate.add_argument("--reference-s", type=float, default=300.0)
    simulate.add_argument("--seed", type=int, default=1234)
    simulate.add_argument("--output", type=Path, required=True, help="trace output file")
    simulate.add_argument("--qos", type=Path, default=None, help="QoS error log output (JSON)")

    stats = subparsers.add_parser("stats", help="summarise a trace file")
    stats.add_argument("trace", type=Path)

    learn = subparsers.add_parser("learn", help="learn a reference model from a trace")
    learn.add_argument("trace", type=Path)
    learn.add_argument("--reference-s", type=float, default=300.0)
    learn.add_argument("--window-ms", type=float, default=40.0)
    learn.add_argument("--k", type=int, default=20)
    learn.add_argument("--model", type=Path, required=True, help="output model file (.npz)")
    learn.add_argument(
        "--knn-backend",
        choices=["auto", "brute", "kdtree", "grid", "balltree"],
        default=None,
        help="k-NN index for reference scoring (default auto: brute force "
        "below the crossover reference size, ball tree above; every backend "
        "is exact and bit-identical)",
    )

    monitor = subparsers.add_parser("monitor", help="monitor a trace with a learned model")
    monitor.add_argument("trace", type=Path)
    monitor.add_argument("--model", type=Path, default=None, help="reference model (.npz)")
    monitor.add_argument("--reference-s", type=float, default=300.0)
    monitor.add_argument("--window-ms", type=float, default=40.0)
    monitor.add_argument("--alpha", type=float, default=1.2)
    monitor.add_argument("--k", type=int, default=20)
    monitor.add_argument("--batch-size", type=_positive_int, default=64)
    monitor.add_argument(
        "--ingest",
        choices=["columnar", "objects"],
        default="columnar",
        help="file ingest path: vectorized columnar decode (default) or the "
        "historical per-event object decode; results are bit-identical",
    )
    monitor.add_argument(
        "--prefetch",
        type=_non_negative_int,
        default=4,
        help="batches the columnar ingest pipeline decodes ahead of scoring "
        "(bounded producer/consumer hand-off; 0 disables the overlap)",
    )
    monitor.add_argument(
        "--follow",
        action="store_true",
        help="tail the trace file as it is appended (streaming columnar "
        "ingest with bounded memory); requires --ingest columnar and stops "
        "after --idle-timeout seconds without growth",
    )
    monitor.add_argument(
        "--poll-interval",
        type=_positive_float,
        default=0.05,
        metavar="SECONDS",
        help="how often --follow re-checks the file for growth",
    )
    monitor.add_argument(
        "--idle-timeout",
        type=_non_negative_float,
        default=None,
        metavar="SECONDS",
        help="stop --follow after this long without new bytes "
        "(default: follow forever, like tail -f)",
    )
    monitor.add_argument(
        "--on-corrupt",
        choices=["raise", "skip"],
        default="raise",
        help="with --follow: fail the stream on the first corrupt record "
        "(default) or skip damaged regions, count them, and exit 3 when any "
        "were skipped",
    )
    monitor.add_argument(
        "--recording-format",
        choices=["jsonl", "binary"],
        default="jsonl",
        help="on-disk format of the recorded windows (binary matches the "
        "accounted window bytes exactly)",
    )
    monitor.add_argument("--output", type=Path, default=None, help="recorded trace output")
    monitor.add_argument(
        "--knn-backend",
        choices=["auto", "brute", "kdtree", "grid", "balltree"],
        default=None,
        help="k-NN index for reference scoring (default auto; a loaded "
        "--model is reindexed when the flag is given explicitly; every "
        "backend is exact and bit-identical)",
    )

    fleet = subparsers.add_parser(
        "fleet", help="monitor several traces as one sharded fleet"
    )
    fleet.add_argument("traces", type=Path, nargs="+", help="one trace file per stream")
    fleet.add_argument("--model", type=Path, default=None, help="shared model (.npz)")
    fleet.add_argument(
        "--reference-s",
        type=float,
        default=300.0,
        help="reference prefix of the first trace used for learning "
        "when no --model is given",
    )
    fleet.add_argument("--window-ms", type=float, default=40.0)
    fleet.add_argument("--alpha", type=float, default=1.2)
    fleet.add_argument("--k", type=int, default=20)
    fleet.add_argument("--batch-size", type=_positive_int, default=64)
    fleet.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="worker processes for the fleet (1 = serial; results are "
        "bit-identical for any worker count)",
    )
    fleet.add_argument(
        "--queue-depth",
        type=_positive_int,
        default=8,
        help="depth of the bounded per-shard channels used by the parallel "
        "backend's chunked transport (streaming shards and --chunk-windows)",
    )
    fleet.add_argument(
        "--chunk-windows",
        type=_positive_int,
        default=None,
        help="feed window-iterable shards to parallel workers in bounded "
        "chunks of this many windows instead of materialising whole shards",
    )
    fleet.add_argument(
        "--failure-policy",
        choices=["abort", "isolate"],
        default="abort",
        help="what a shard failure does to the fleet: abort the whole run "
        "(default) or quarantine the failing shard while its siblings "
        "complete (the run then exits 3 and the manifest marks the failure)",
    )
    fleet.add_argument(
        "--shard-retries",
        type=_non_negative_int,
        default=0,
        help="resubmit a failed shard up to this many times before its "
        "failure counts (retried results are bit-identical to fault-free)",
    )
    fleet.add_argument(
        "--retry-backoff",
        type=_non_negative_float,
        default=0.0,
        metavar="SECONDS",
        help="base delay before a shard retry, scaled by the attempt number",
    )
    fleet.add_argument(
        "--ingest",
        choices=["columnar", "objects"],
        default="columnar",
        help="file ingest path: vectorized columnar decode (default, and the "
        "cheap flat-array worker hand-off) or per-event object decode; "
        "results are bit-identical",
    )
    fleet.add_argument(
        "--recording-format",
        choices=["jsonl", "binary"],
        default="jsonl",
        help="on-disk format of the recorded shard files",
    )
    fleet.add_argument(
        "--output-dir", type=Path, default=None, help="record each shard here"
    )
    fleet.add_argument(
        "--knn-backend",
        choices=["auto", "brute", "kdtree", "grid", "balltree"],
        default=None,
        help="k-NN index for reference scoring (default auto; a loaded "
        "--model is reindexed when the flag is given explicitly; every "
        "backend is exact and bit-identical)",
    )

    experiment = subparsers.add_parser(
        "experiment", help="run the paper's endurance experiment end to end"
    )
    experiment.add_argument("--duration", type=float, default=900.0)
    experiment.add_argument("--reference-s", type=float, default=300.0)
    experiment.add_argument("--alpha", type=float, default=1.2)
    experiment.add_argument("--seed", type=int, default=1234)
    experiment.add_argument("--report", type=Path, default=None, help="write the report here")

    sweep = subparsers.add_parser("sweep", help="precision/recall vs alpha (Figure 1)")
    sweep.add_argument("--duration", type=float, default=900.0)
    sweep.add_argument("--reference-s", type=float, default=300.0)
    sweep.add_argument("--seed", type=int, default=1234)
    sweep.add_argument(
        "--alphas", type=str, default="1.0,1.1,1.2,1.3,1.5,1.75,2.0,2.5,3.0"
    )
    sweep.add_argument("--report", type=Path, default=None)
    return parser


def _emit(args: argparse.Namespace, text: str, payload: dict) -> None:
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True, default=str))
    else:
        print(text)


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = EnduranceConfig.scaled_paper_setup(
        duration_s=args.duration, reference_s=args.reference_s, seed=args.seed
    )
    trace = EnduranceRun(config).run()
    write_trace(trace.events, args.output)
    if args.qos is not None:
        args.qos.parent.mkdir(parents=True, exist_ok=True)
        args.qos.write_text(
            json.dumps(
                {
                    "perturbations": [
                        {"start_s": i.start_s, "end_s": i.end_s}
                        for i in trace.perturbation_intervals
                    ],
                    "errors": [dataclasses.asdict(m) for m in trace.qos_messages],
                },
                indent=2,
            )
        )
    payload = {
        "n_events": trace.n_events,
        "n_qos_errors": len(trace.qos_messages),
        "duration_s": trace.duration_s,
        "output": str(args.output),
    }
    _emit(
        args,
        f"simulated {trace.duration_s:.0f}s: {trace.n_events} events, "
        f"{len(trace.qos_messages)} QoS errors -> {args.output}",
        payload,
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    events = read_trace(args.trace)
    statistics = summarize(events)
    text = "\n".join(
        [
            f"events          : {statistics.n_events}",
            f"duration        : {statistics.duration_s:.1f} s",
            f"event rate      : {statistics.events_per_second:.0f} events/s",
            f"encoded size    : {statistics.encoded_bytes} bytes",
            f"bandwidth       : {statistics.bytes_per_second:.0f} bytes/s",
            "top event types : "
            + ", ".join(
                f"{name} ({count})"
                for name, count in sorted(
                    statistics.type_counts.items(), key=lambda item: -item[1]
                )[:8]
            ),
        ]
    )
    _emit(args, text, statistics.to_dict())
    return 0


def _monitor_configs(args: argparse.Namespace) -> tuple[DetectorConfig, MonitorConfig]:
    detector = DetectorConfig(k_neighbours=args.k, lof_threshold=getattr(args, "alpha", 1.2))
    monitor = MonitorConfig(
        window_duration_us=int(args.window_ms * 1000),
        reference_duration_us=int(args.reference_s * 1e6),
        batch_size=getattr(args, "batch_size", 1),
        recording_format=getattr(args, "recording_format", "jsonl"),
        knn_backend=getattr(args, "knn_backend", None) or "auto",
    )
    return detector, monitor


def _cmd_learn(args: argparse.Namespace) -> int:
    events = read_trace(args.trace)
    args.alpha = 1.2
    detector_config, monitor_config = _monitor_configs(args)
    registry = EventTypeRegistry.with_default_types()
    monitor = TraceMonitor(detector_config, monitor_config, registry)
    reference, _ = TraceStream(iter(events)).split_reference(
        monitor_config.reference_duration_us, monitor_config.window_duration_us
    )
    model = monitor.learn_reference(reference)
    model.save(args.model)
    payload = {
        "reference_windows": model.n_reference_windows,
        "dimension": model.dimension,
        "suggested_alpha": model.suggest_alpha(),
        "model": str(args.model),
    }
    _emit(
        args,
        f"learned model from {model.n_reference_windows} windows "
        f"(dimension {model.dimension}, suggested alpha "
        f"{model.suggest_alpha():.2f}) -> {args.model}",
        payload,
    )
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    detector_config, monitor_config = _monitor_configs(args)
    registry = EventTypeRegistry.with_default_types()
    monitor = TraceMonitor(detector_config, monitor_config, registry)
    model = ReferenceModel.load(args.model) if args.model else None
    if model is not None and args.knn_backend is not None:
        model.reindex(args.knn_backend)
    if args.on_corrupt != "raise" and not args.follow:
        raise ConfigurationError(
            "--on-corrupt applies to streaming ingest only (add --follow)"
        )
    if args.follow:
        if args.ingest != "columnar":
            raise ConfigurationError(
                "--follow requires the columnar ingest path "
                "(drop --ingest objects)"
            )
        result = monitor.follow_file(
            args.trace,
            model=model,
            output_path=args.output,
            prefetch_batches=args.prefetch,
            poll_interval_s=args.poll_interval,
            idle_timeout_s=args.idle_timeout,
            on_corrupt=args.on_corrupt,
        )
    elif args.ingest == "columnar":
        # Default path: file bytes -> flat arrays -> lazy WindowBatches,
        # with decode/batch construction overlapped with scoring.
        result = monitor.run_on_file(
            args.trace,
            model=model,
            output_path=args.output,
            prefetch_batches=args.prefetch,
        )
    else:
        events = read_trace(args.trace)
        result = monitor.run_on_stream(
            TraceStream(iter(events)), model=model, output_path=args.output
        )
    report = result.report
    payload = {
        "windows": result.n_windows,
        "anomalous": result.n_anomalous,
        "recorded_bytes": report.recorded_bytes,
        "total_bytes": report.total_bytes,
        "reduction_factor": report.reduction_factor,
    }
    text = (
        f"monitored {result.n_windows} windows: {result.n_anomalous} anomalous, "
        f"{report.recorded_bytes}/{report.total_bytes} bytes recorded "
        f"({report.reduction_factor:.1f}x reduction)"
    )
    corrupt = (
        result.stream_stats.corrupt_records
        if result.stream_stats is not None
        else 0
    )
    if corrupt:
        assert result.stream_stats is not None
        payload["corrupt_records"] = corrupt
        payload["corrupt_offsets"] = list(result.stream_stats.corrupt_offsets)
        text += f"\ndegraded: {corrupt} corrupt record region(s) skipped"
    _emit(args, text, payload)
    return 3 if corrupt else 0


def _shard_labels(paths: list[Path]) -> list[str]:
    """Unique shard labels derived from the trace file names."""
    labels: list[str] = []
    used: set[str] = set()
    for path in paths:
        base = path.stem or "stream"
        label = base
        suffix = 1
        while label in used:
            label = f"{base}-{suffix}"
            suffix += 1
        used.add(label)
        labels.append(label)
    return labels


def _cmd_fleet(args: argparse.Namespace) -> int:
    detector_config = DetectorConfig(k_neighbours=args.k, lof_threshold=args.alpha)
    monitor_config = MonitorConfig(
        window_duration_us=int(args.window_ms * 1000),
        reference_duration_us=int(args.reference_s * 1e6),
        batch_size=args.batch_size,
        recording_format=args.recording_format,
        fleet_workers=args.workers,
        knn_backend=args.knn_backend or "auto",
        stream_queue_depth=args.queue_depth,
        shard_chunk_windows=args.chunk_windows,
        shard_failure_policy=args.failure_policy,
        shard_retries=args.shard_retries,
        shard_retry_backoff_s=args.retry_backoff,
    )
    registry = EventTypeRegistry.with_default_types()
    labels = _shard_labels(args.traces)
    fleet = ShardedTraceMonitor(detector_config, monitor_config, registry)
    if args.ingest == "columnar":
        # Default path: each trace is decoded straight to flat arrays; with
        # --workers > 1 those arrays (not event lists) are what reaches the
        # worker processes.
        columns_by_label = {
            label: read_trace_columns(path)
            for label, path in zip(labels, args.traces)
        }

        def reference_windows():
            first = columns_by_label[labels[0]]
            layout = column_windows_by_duration(
                first, monitor_config.window_duration_us
            )
            n_reference = int(
                np.searchsorted(
                    layout.end_us,
                    monitor_config.reference_duration_us,
                    side="right",
                )
            )
            return materialize_layout_windows(first, layout, 0, n_reference)

        def run(model):
            return fleet.run_on_columns(
                columns_by_label, model, output_dir=args.output_dir
            )

    else:
        events_by_label = {
            label: read_trace(path) for label, path in zip(labels, args.traces)
        }

        def reference_windows():
            reference, _ = TraceStream(
                iter(events_by_label[labels[0]])
            ).split_reference(
                monitor_config.reference_duration_us,
                monitor_config.window_duration_us,
            )
            return reference

        def run(model):
            streams = {
                label: TraceStream(iter(events))
                for label, events in events_by_label.items()
            }
            return fleet.run_on_streams(streams, model, output_dir=args.output_dir)

    if args.model is not None:
        model = ReferenceModel.load(args.model)
        if args.knn_backend is not None:
            model.reindex(args.knn_backend)
    else:
        # Learn the shared model on the reference prefix of the first trace
        # ("golden device"); every trace is then monitored in full.
        model = TraceMonitor(
            detector_config, monitor_config, registry
        ).learn_reference(reference_windows())
    result = run(model)
    report = result.report
    lines = [
        f"{label}: {shard.n_windows} windows, {shard.n_anomalous} anomalous, "
        f"{shard.report.recorded_bytes}/{shard.report.total_bytes} bytes recorded"
        for label, shard in result.shard_results.items()
    ]
    for label in result.failed_labels:
        outcome = result.outcomes[label]
        lines.append(
            f"{label}: FAILED after {outcome.attempts} attempt(s): "
            f"{outcome.error}"
        )
    lines.append(
        f"fleet: {result.n_shards} shards, {result.n_windows} windows, "
        f"{result.n_anomalous} anomalous, "
        f"{report.recorded_bytes}/{report.total_bytes} bytes recorded "
        f"({report.reduction_factor:.1f}x reduction)"
    )
    if result.degraded:
        lines.append(
            f"degraded: {result.n_failed} shard(s) quarantined "
            f"(see manifest.json in --output-dir)"
        )
    _emit(args, "\n".join(lines), result.to_dict())
    return 3 if result.degraded else 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    config = EnduranceConfig.scaled_paper_setup(
        duration_s=args.duration, reference_s=args.reference_s, seed=args.seed
    )
    config = dataclasses.replace(
        config, detector=config.detector.with_alpha(args.alpha)
    )
    result = run_endurance_experiment(config)
    text = render_headline(result.summary())
    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(text + "\n")
    _emit(args, text, result.summary())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    alphas = [float(a) for a in args.alphas.split(",") if a.strip()]
    config = EnduranceConfig.scaled_paper_setup(
        duration_s=args.duration, reference_s=args.reference_s, seed=args.seed
    )
    result = run_endurance_experiment(config)
    points = alpha_sweep(result, alphas)
    text = render_alpha_sweep(points)
    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(text + "\n")
    _emit(args, text, {"points": [point.to_dict() for point in points]})
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "stats": _cmd_stats,
    "learn": _cmd_learn,
    "monitor": _cmd_monitor,
    "fleet": _cmd_fleet,
    "experiment": _cmd_experiment,
    "sweep": _cmd_sweep,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.verbose)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
