"""Command-line front-end (``repro-trace``)."""

from .main import main

__all__ = ["main"]
