"""Small logging helpers shared by the command line tools and experiments.

The library itself never configures the root logger; only the CLI entry
points call :func:`configure_logging`.  Library modules obtain loggers via
:func:`get_logger` so that all of them live under the ``repro`` namespace.
"""

from __future__ import annotations

import logging
import sys

_ROOT_NAME = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATE_FORMAT = "%H:%M:%S"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger below the ``repro`` namespace.

    ``get_logger("analysis.monitor")`` returns the logger named
    ``repro.analysis.monitor``.  Passing ``None`` returns the package root
    logger.
    """
    if not name:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def configure_logging(verbosity: int = 0, stream=None) -> logging.Logger:
    """Configure the package root logger for CLI / script usage.

    Parameters
    ----------
    verbosity:
        ``0`` logs warnings and above, ``1`` adds informational messages and
        ``2`` (or more) enables debug output.
    stream:
        Target stream; defaults to ``sys.stderr``.
    """
    level = logging.WARNING
    if verbosity == 1:
        level = logging.INFO
    elif verbosity >= 2:
        level = logging.DEBUG

    logger = logging.getLogger(_ROOT_NAME)
    logger.setLevel(level)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT, _DATE_FORMAT))
    # Replace previous handlers so repeated CLI invocations in the same
    # process (e.g. tests) do not duplicate output.
    logger.handlers = [handler]
    logger.propagate = False
    return logger
