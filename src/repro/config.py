"""Central configuration objects for the reproduction.

The paper's approach has a small number of user-facing parameters (window
size, number of LOF neighbours ``K``, LOF threshold ``alpha``, KL similarity
threshold) and the experiment of Section III has its own parameters
(perturbation period/duration, reference length, ...).  All of them are
grouped here as frozen-by-default dataclasses with validation, plus helpers to
load/dump them as plain dictionaries or JSON files so experiments are easy to
script and archive.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from .errors import ConfigurationError

__all__ = [
    "DetectorConfig",
    "MonitorConfig",
    "PlatformConfig",
    "MediaConfig",
    "PerturbationConfig",
    "EnduranceConfig",
    "config_to_dict",
    "config_from_dict",
    "load_config",
    "save_config",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class DetectorConfig:
    """Parameters of the online anomaly detector (paper Section II).

    Attributes
    ----------
    k_neighbours:
        Number of neighbours used by the Local Outlier Factor computation
        (``K`` in the paper; the experiment of Section III uses 20).
    lof_threshold:
        The ``alpha`` threshold above which a window is declared anomalous
        (the paper sweeps it in Figure 1 and uses 1.2 for the headline
        numbers).
    kl_threshold:
        Threshold on the (symmetrised, smoothed) Kullback-Leibler divergence
        between the current window pmf and the running past pmf.  Below this
        value the window is considered "similar" and merged into the past
        pmf without running LOF.
    kl_smoothing:
        Additive (Laplace) smoothing constant applied before computing KL so
        the divergence is finite even when supports differ.
    merge_decay:
        Exponential decay factor used when merging the current pmf into the
        running past pmf: ``P <- (1 - merge_decay) * P + merge_decay * N``.
    use_kl_gate:
        If ``False``, LOF is computed for every window (ablation C).
    """

    k_neighbours: int = 20
    lof_threshold: float = 1.2
    kl_threshold: float = 0.05
    kl_smoothing: float = 1e-6
    merge_decay: float = 0.2
    use_kl_gate: bool = True

    def __post_init__(self) -> None:
        _require(self.k_neighbours >= 1, "k_neighbours must be >= 1")
        _require(self.lof_threshold > 0.0, "lof_threshold must be positive")
        _require(self.kl_threshold >= 0.0, "kl_threshold must be >= 0")
        _require(self.kl_smoothing > 0.0, "kl_smoothing must be positive")
        _require(0.0 < self.merge_decay <= 1.0, "merge_decay must be in (0, 1]")

    def with_alpha(self, alpha: float) -> "DetectorConfig":
        """Return a copy with a different LOF threshold (used by sweeps)."""
        return dataclasses.replace(self, lof_threshold=alpha)


@dataclass(frozen=True)
class MonitorConfig:
    """Parameters of the trace monitor wrapping the detector.

    Attributes
    ----------
    window_duration_us:
        Duration of a trace window in microseconds (the paper uses 40 ms
        windows, i.e. 40_000 us).
    window_event_capacity:
        Optional cap on the number of events per window, mirroring the size
        of the tracing-hardware buffer.  ``None`` disables the cap.
    reference_duration_us:
        Length of the reference prefix used for learning when no curated
        reference database is supplied (300 s in the paper).
    record_context_windows:
        Number of extra windows recorded before and after an anomalous
        window, so the saved trace retains some context for debugging.
    batch_size:
        Number of windows the monitor hands to the detector at once.  1 (the
        default) keeps the historical per-window path bit-for-bit; larger
        values route the stream through the vectorized batch scoring plane
        (:meth:`~repro.analysis.detector.OnlineAnomalyDetector.process_batch`),
        which produces identical decisions at a fraction of the cost.
    io_buffer_bytes:
        Size of the selective recorder's write buffer: recorded windows are
        encoded into memory and flushed to the output file in chunks of at
        least this many bytes.  ``0`` disables buffering (one write per
        recorded window, the historical behaviour).
    recording_format:
        On-disk format of recorded windows.  ``"jsonl"`` (default) keeps the
        historical human-readable JSON-lines output; ``"binary"`` routes the
        recorders through :class:`~repro.trace.codec.BinaryTraceCodec`, one
        self-describing segment per recorded window, so the persisted body
        bytes match the accounted ``window_bytes`` exactly and the file
        round-trips through :func:`~repro.trace.reader.read_trace`.
    max_active_shards:
        Upper bound on the number of stream shards a
        :class:`~repro.analysis.fleet.ShardedTraceMonitor` keeps open
        concurrently (detector state, recorder, output file).  ``None``
        (default) opens every shard at once; a finite bound caps memory and
        file handles on very wide fleets — results are identical either way.
        Only the serial backend schedules shards; with ``fleet_workers > 1``
        the worker count bounds concurrency instead.
    fleet_workers:
        Number of worker processes the sharded fleet partitions its shards
        across.  ``1`` (default) keeps the historical single-process
        interleaved execution; larger values run whole shards in a
        :class:`concurrent.futures.ProcessPoolExecutor`
        (:mod:`repro.analysis.parallel`) for multi-core scaling, with
        results bit-identical to the serial fleet.
    knn_backend:
        k-NN index used for reference scoring: one of ``"brute"``,
        ``"kdtree"``, ``"grid"``, ``"balltree"`` or ``"auto"`` (default).
        ``"auto"`` keeps the brute-force scan below
        :data:`~repro.analysis.knn.AUTO_CROSSOVER_POINTS` reference points
        and switches to the blocked ball tree above it.  Every backend is
        exact: decisions, reports and recorded bytes are bit-identical.
    stream_queue_depth:
        Depth of the bounded hand-off queues used by the streaming ingest
        plane (:mod:`repro.trace.streaming`) and the chunked per-shard
        channels of the parallel fleet backend.  Deeper queues smooth
        producer/consumer jitter at the cost of more buffered chunks in
        memory; must be >= 1.
    shard_chunk_windows:
        When set, the parallel fleet backend feeds plain window-iterable
        shards to workers in bounded chunks of this many windows instead of
        materialising the full shard list up front (streaming shards are
        always fed chunked).  ``None`` (default) keeps the historical
        fully-materialised hand-off for list/iterator shards.
    shard_failure_policy:
        What the sharded fleet does when one shard fails.  ``"abort"``
        (default, the historical behaviour) tears the whole run down and
        re-raises the shard's error as a :class:`~repro.errors.FleetError`.
        ``"isolate"`` quarantines the failing shard — its partial output
        file is discarded, its failure is reported as a
        :class:`~repro.analysis.fleet.ShardOutcome` on the
        :class:`~repro.analysis.fleet.FleetResult` — while sibling shards
        run to completion with bit-identical results.
    shard_retries:
        Number of times a failed shard is re-run from scratch before it is
        quarantined (``"isolate"``) or aborts the fleet (``"abort"``).  Only
        shards whose window source can be replayed (materialised sequences
        and columnar sources) are retried; one-shot iterators and live
        streams fail terminally on their first error.  ``0`` (default)
        disables retry.
    shard_retry_backoff_s:
        Delay in seconds before each retry attempt, scaled linearly by the
        attempt number (attempt ``n`` sleeps ``n * shard_retry_backoff_s``).
        ``0.0`` (default) retries immediately.
    """

    window_duration_us: int = 40_000
    window_event_capacity: int | None = None
    reference_duration_us: int = 300_000_000
    record_context_windows: int = 0
    batch_size: int = 1
    io_buffer_bytes: int = 65_536
    recording_format: str = "jsonl"
    max_active_shards: int | None = None
    fleet_workers: int = 1
    knn_backend: str = "auto"
    stream_queue_depth: int = 8
    shard_chunk_windows: int | None = None
    shard_failure_policy: str = "abort"
    shard_retries: int = 0
    shard_retry_backoff_s: float = 0.0

    def __post_init__(self) -> None:
        _require(self.window_duration_us > 0, "window_duration_us must be > 0")
        _require(
            self.window_event_capacity is None or self.window_event_capacity > 0,
            "window_event_capacity must be None or > 0",
        )
        _require(self.reference_duration_us > 0, "reference_duration_us must be > 0")
        _require(self.record_context_windows >= 0, "record_context_windows must be >= 0")
        _require(self.batch_size >= 1, "batch_size must be >= 1")
        _require(self.io_buffer_bytes >= 0, "io_buffer_bytes must be >= 0")
        _require(
            self.recording_format in {"jsonl", "binary"},
            "recording_format must be 'jsonl' or 'binary'",
        )
        _require(
            self.max_active_shards is None or self.max_active_shards >= 1,
            "max_active_shards must be None or >= 1",
        )
        _require(self.fleet_workers >= 1, "fleet_workers must be >= 1")
        _require(
            self.knn_backend in {"auto", "brute", "kdtree", "grid", "balltree"},
            "knn_backend must be one of 'auto', 'brute', 'kdtree', 'grid', 'balltree'",
        )
        _require(
            self.stream_queue_depth >= 1, "stream_queue_depth must be >= 1"
        )
        _require(
            self.shard_chunk_windows is None or self.shard_chunk_windows >= 1,
            "shard_chunk_windows must be None or >= 1",
        )
        _require(
            self.shard_failure_policy in {"abort", "isolate"},
            "shard_failure_policy must be 'abort' or 'isolate'",
        )
        _require(self.shard_retries >= 0, "shard_retries must be >= 0")
        _require(
            self.shard_retry_backoff_s >= 0.0, "shard_retry_backoff_s must be >= 0"
        )


@dataclass(frozen=True)
class PlatformConfig:
    """Parameters of the simulated MPSoC platform.

    The paper runs GStreamer pinned to a single core of an Intel i7; the
    default platform therefore exposes one general purpose core, but the
    simulator supports several cores and hardware accelerators.
    """

    n_cores: int = 1
    core_frequency_mhz: int = 2000
    scheduler_quantum_us: int = 4_000
    trace_buffer_events: int = 256
    context_switch_cost_us: int = 5
    memory_bandwidth_mbps: int = 6_400
    trace_scope: str = "application"

    def __post_init__(self) -> None:
        _require(self.n_cores >= 1, "n_cores must be >= 1")
        _require(self.core_frequency_mhz > 0, "core_frequency_mhz must be > 0")
        _require(self.scheduler_quantum_us > 0, "scheduler_quantum_us must be > 0")
        _require(self.trace_buffer_events > 0, "trace_buffer_events must be > 0")
        _require(self.context_switch_cost_us >= 0, "context_switch_cost_us must be >= 0")
        _require(self.memory_bandwidth_mbps > 0, "memory_bandwidth_mbps must be > 0")
        _require(
            self.trace_scope in {"application", "full"},
            "trace_scope must be 'application' or 'full'",
        )


@dataclass(frozen=True)
class MediaConfig:
    """Parameters of the simulated multimedia (video decoding) workload.

    ``qos_errors_in_trace`` controls whether the pipeline's QoS error
    messages are mirrored into the trace itself.  The paper reads the
    GStreamer error log as a side channel (ground truth only), so the
    default is ``False``; enabling it models platforms whose tracing layer
    captures framework errors and makes detection markedly easier.
    """

    frame_rate_fps: float = 25.0
    duration_s: float = 600.0
    gop_length: int = 12
    buffer_capacity_frames: int = 25
    audio_sample_rate_hz: int = 48_000
    frame_complexity_mean: float = 1.0
    frame_complexity_jitter: float = 0.15
    qos_errors_in_trace: bool = False
    seed: int = 1234

    def __post_init__(self) -> None:
        _require(self.frame_rate_fps > 0, "frame_rate_fps must be > 0")
        _require(self.duration_s > 0, "duration_s must be > 0")
        _require(self.gop_length >= 1, "gop_length must be >= 1")
        _require(self.buffer_capacity_frames >= 1, "buffer_capacity_frames must be >= 1")
        _require(self.audio_sample_rate_hz > 0, "audio_sample_rate_hz must be > 0")
        _require(self.frame_complexity_mean > 0, "frame_complexity_mean must be > 0")
        _require(self.frame_complexity_jitter >= 0, "frame_complexity_jitter must be >= 0")

    @property
    def frame_period_us(self) -> float:
        """Nominal frame period in microseconds."""
        return 1_000_000.0 / self.frame_rate_fps

    @property
    def n_frames(self) -> int:
        """Total number of video frames in the workload."""
        return int(round(self.duration_s * self.frame_rate_fps))


@dataclass(frozen=True)
class PerturbationConfig:
    """Schedule of CPU perturbations injected during the endurance run.

    The paper injects a 20 s perturbation every 3 minutes through a heavy
    processing application; the simulated equivalent adds a CPU-bound task
    competing with the decoder for the core.
    """

    period_s: float = 180.0
    duration_s: float = 20.0
    start_offset_s: float = 330.0
    load_factor: float = 3.0
    jitter_s: float = 0.0
    seed: int = 99

    def __post_init__(self) -> None:
        _require(self.period_s > 0, "period_s must be > 0")
        _require(self.duration_s > 0, "duration_s must be > 0")
        _require(self.duration_s < self.period_s, "duration_s must be < period_s")
        _require(self.start_offset_s >= 0, "start_offset_s must be >= 0")
        _require(self.load_factor > 0, "load_factor must be > 0")
        _require(self.jitter_s >= 0, "jitter_s must be >= 0")


@dataclass(frozen=True)
class EnduranceConfig:
    """Full description of an endurance-test experiment (paper Section III)."""

    detector: DetectorConfig = field(default_factory=DetectorConfig)
    monitor: MonitorConfig = field(default_factory=MonitorConfig)
    platform: PlatformConfig = field(default_factory=PlatformConfig)
    media: MediaConfig = field(default_factory=MediaConfig)
    perturbation: PerturbationConfig = field(default_factory=PerturbationConfig)

    def __post_init__(self) -> None:
        reference_s = self.monitor.reference_duration_us / 1e6
        _require(
            reference_s < self.media.duration_s,
            "reference duration must be shorter than the media duration",
        )
        _require(
            self.perturbation.start_offset_s >= reference_s,
            "perturbations must start after the reference period "
            f"(start_offset_s={self.perturbation.start_offset_s}, reference={reference_s}s)",
        )

    @classmethod
    def scaled_paper_setup(
        cls,
        duration_s: float = 1800.0,
        reference_s: float = 300.0,
        seed: int = 1234,
    ) -> "EnduranceConfig":
        """Return the paper's experimental setup scaled to ``duration_s``.

        The paper decodes a 6 h 17 m video; simulating the full run is
        unnecessary for reproducing the *shape* of Figure 1, so the default
        scales the run down while keeping the window size (40 ms), K (20),
        reference length (300 s) and perturbation schedule (20 s every
        3 minutes) identical to the paper.
        """
        _require(duration_s > reference_s + 60, "duration_s too short for a scaled run")
        return cls(
            detector=DetectorConfig(k_neighbours=20, lof_threshold=1.2),
            monitor=MonitorConfig(
                window_duration_us=40_000,
                reference_duration_us=int(reference_s * 1e6),
            ),
            platform=PlatformConfig(n_cores=1),
            media=MediaConfig(duration_s=duration_s, seed=seed),
            perturbation=PerturbationConfig(start_offset_s=reference_s + 30.0),
        )


_CONFIG_TYPES: Mapping[str, type] = {
    "detector": DetectorConfig,
    "monitor": MonitorConfig,
    "platform": PlatformConfig,
    "media": MediaConfig,
    "perturbation": PerturbationConfig,
}


def config_to_dict(config: Any) -> dict[str, Any]:
    """Convert any configuration dataclass (possibly nested) to a dict."""
    if not dataclasses.is_dataclass(config):
        raise ConfigurationError(f"not a configuration object: {config!r}")
    return dataclasses.asdict(config)


def config_from_dict(data: Mapping[str, Any]) -> EnduranceConfig:
    """Build an :class:`EnduranceConfig` from a (possibly partial) mapping.

    Unknown keys raise :class:`ConfigurationError` instead of being silently
    ignored, so typos in experiment scripts are caught early.
    """
    kwargs: dict[str, Any] = {}
    for key, value in data.items():
        if key not in _CONFIG_TYPES:
            raise ConfigurationError(f"unknown configuration section: {key!r}")
        section_type = _CONFIG_TYPES[key]
        field_names = {f.name for f in dataclasses.fields(section_type)}
        unknown = set(value) - field_names
        if unknown:
            raise ConfigurationError(
                f"unknown keys in section {key!r}: {sorted(unknown)}"
            )
        kwargs[key] = section_type(**value)
    return EnduranceConfig(**kwargs)


def save_config(config: EnduranceConfig, path: str | Path) -> Path:
    """Serialise an experiment configuration to a JSON file."""
    path = Path(path)
    path.write_text(json.dumps(config_to_dict(config), indent=2, sort_keys=True))
    return path


def load_config(path: str | Path) -> EnduranceConfig:
    """Load an experiment configuration previously written by :func:`save_config`."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot load configuration from {path}: {exc}") from exc
    return config_from_dict(data)
