"""Assembly of the multimedia pipeline on top of the platform."""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MediaConfig
from ..errors import PipelineError
from ..platform.scheduler import RoundRobinScheduler
from ..platform.simulator import Simulator
from ..platform.tracer import HardwareTracer
from .bufferqueue import FrameBuffer
from .elements import AudioDecoder, Converter, Demuxer, DisplaySink, VideoDecoder
from .qos import QosMonitor
from .workload import VideoWorkload

__all__ = ["MediaPipeline"]


@dataclass
class MediaPipeline:
    """A fully wired playback pipeline.

    The pipeline owns the workload, the frame buffer, the QoS monitor and all
    the elements; :meth:`start` primes the demuxer and schedules the periodic
    sources (display ticks, audio chunks).
    """

    workload: VideoWorkload
    buffer: FrameBuffer
    qos: QosMonitor
    demuxer: Demuxer
    video_decoder: VideoDecoder
    audio_decoder: AudioDecoder
    converter: Converter
    sink: DisplaySink

    @classmethod
    def build(
        cls,
        simulator: Simulator,
        scheduler: RoundRobinScheduler,
        tracer: HardwareTracer,
        media_config: MediaConfig,
        core: int = 0,
    ) -> "MediaPipeline":
        """Construct and wire every element of the pipeline."""
        workload = VideoWorkload(media_config)
        buffer = FrameBuffer(media_config.buffer_capacity_frames, tracer, core=core)
        qos = QosMonitor(
            tracer, core=core, mirror_to_trace=media_config.qos_errors_in_trace
        )
        demuxer = Demuxer(simulator, tracer, workload, buffer, core=core)
        video_decoder = VideoDecoder(simulator, scheduler, tracer, core=core)
        converter = Converter(simulator, scheduler, tracer, buffer, core=core)
        audio_decoder = AudioDecoder(simulator, tracer, workload, core=core)
        sink = DisplaySink(simulator, tracer, buffer, qos, workload, core=core)

        demuxer.on_packet = video_decoder.accept
        video_decoder.on_decoded = converter.accept
        sink.on_frame_consumed = demuxer.frame_consumed

        return cls(
            workload=workload,
            buffer=buffer,
            qos=qos,
            demuxer=demuxer,
            video_decoder=video_decoder,
            audio_decoder=audio_decoder,
            converter=converter,
            sink=sink,
        )

    def start(self, until_us: int) -> None:
        """Prime the pipeline and schedule its periodic activity."""
        if until_us <= 0:
            raise PipelineError("until_us must be positive")
        self.demuxer.pump()
        self.sink.start(until_us)
        self.audio_decoder.start(until_us)

    # ------------------------------------------------------------------ #
    # Summary accessors used by reports and tests
    # ------------------------------------------------------------------ #
    def frames_displayed(self) -> int:
        """Number of frames displayed on time (or late but not dropped)."""
        return self.sink.frames_displayed

    def frames_dropped(self) -> int:
        """Number of frames dropped by the QoS catch-up mechanism."""
        return self.sink.frames_dropped

    def qos_error_count(self) -> int:
        """Total number of QoS error messages reported."""
        return self.qos.n_messages
