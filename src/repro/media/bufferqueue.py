"""Bounded frame buffer between the decoding stages and the display sink.

The buffer is the mechanism behind the paper's Δs / Δe delays: when a
perturbation slows the decoder down, the sink keeps displaying buffered
frames for a while before underruns (and hence QoS errors) become visible,
and conversely the impact persists slightly after the perturbation ends
until the decoder has refilled the queue.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from ..errors import PipelineError
from ..trace.event import EventType
from ..platform.tracer import HardwareTracer
from .workload import FrameDescriptor

__all__ = ["FrameBuffer"]


class FrameBuffer:
    """Bounded FIFO of decoded frames awaiting display.

    Parameters
    ----------
    capacity:
        Maximum number of decoded frames held (25 frames ≈ 1 s at 25 fps,
        matching a typical GStreamer queue element).
    tracer:
        Tracer used to emit ``buffer_push`` / ``buffer_pop`` /
        ``buffer_level`` / ``buffer_underrun`` / ``buffer_overrun`` events.
    core:
        Core index recorded on buffer events.
    """

    def __init__(self, capacity: int, tracer: HardwareTracer, core: int = 0) -> None:
        if capacity <= 0:
            raise PipelineError("buffer capacity must be positive")
        self.capacity = int(capacity)
        self.tracer = tracer
        self.core = int(core)
        self._frames: Deque[FrameDescriptor] = deque()
        self.pushes = 0
        self.pops = 0
        self.underruns = 0
        self.overruns = 0
        self.peak_level = 0

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def level(self) -> int:
        """Number of frames currently buffered."""
        return len(self._frames)

    @property
    def is_full(self) -> bool:
        """Whether the buffer has reached its capacity."""
        return len(self._frames) >= self.capacity

    @property
    def is_empty(self) -> bool:
        """Whether no decoded frame is available."""
        return not self._frames

    def fill_fraction(self) -> float:
        """Occupancy as a fraction of capacity."""
        return len(self._frames) / self.capacity

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #
    def push(self, frame: FrameDescriptor, timestamp_us: int, task: str = "converter") -> bool:
        """Add a decoded frame; return ``False`` (and trace an overrun) if full."""
        if self.is_full:
            self.overruns += 1
            self.tracer.emit(
                timestamp_us,
                EventType.BUFFER_OVERRUN,
                core=self.core,
                task=task,
                args={"frame": frame.index, "level": self.level},
            )
            return False
        self._frames.append(frame)
        self.pushes += 1
        self.peak_level = max(self.peak_level, self.level)
        self.tracer.emit(
            timestamp_us,
            EventType.BUFFER_PUSH,
            core=self.core,
            task=task,
            args={"frame": frame.index, "level": self.level},
        )
        return True

    def pop(self, timestamp_us: int, task: str = "sink") -> FrameDescriptor | None:
        """Remove the oldest frame; return ``None`` (and trace an underrun) if empty."""
        if self.is_empty:
            self.underruns += 1
            self.tracer.emit(
                timestamp_us,
                EventType.BUFFER_UNDERRUN,
                core=self.core,
                task=task,
                args={"level": 0},
            )
            return None
        frame = self._frames.popleft()
        self.pops += 1
        self.tracer.emit(
            timestamp_us,
            EventType.BUFFER_POP,
            core=self.core,
            task=task,
            args={"frame": frame.index, "level": self.level},
        )
        return frame

    def emit_level(self, timestamp_us: int, task: str = "queue") -> None:
        """Emit a periodic ``buffer_level`` sample event."""
        self.tracer.emit(
            timestamp_us,
            EventType.BUFFER_LEVEL,
            core=self.core,
            task=task,
            args={"level": self.level, "capacity": self.capacity},
        )
