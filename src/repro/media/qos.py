"""Quality-of-service error reporting.

In the paper's experiment the ground truth for "something went wrong" is the
error messages reported by GStreamer during playback.  The simulated
pipeline's equivalent is the :class:`QosMonitor`: pipeline elements report
QoS violations (buffer underrun at display time, frame displayed late,
frame dropped) and each report both becomes a ``qos_error`` trace event and
is kept in a side list that the labelling code uses as ground truth —
mirroring how the paper reads GStreamer's error log next to the trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import PipelineError
from ..trace.event import EventType
from ..platform.tracer import HardwareTracer

__all__ = ["QosMessage", "QosMonitor"]


@dataclass(frozen=True)
class QosMessage:
    """One QoS error message reported by the pipeline.

    Attributes
    ----------
    timestamp_us:
        When the violation was observed.
    reason:
        Machine-readable reason (``"underrun"``, ``"late_frame"``,
        ``"frame_drop"``).
    frame_index:
        Index of the affected frame, or ``-1`` when no frame is involved
        (e.g. underruns where no frame was available at all).
    lateness_us:
        How late the frame was relative to its presentation deadline
        (0 when not applicable).
    """

    timestamp_us: int
    reason: str
    frame_index: int = -1
    lateness_us: float = 0.0

    def __post_init__(self) -> None:
        if self.timestamp_us < 0:
            raise PipelineError("QoS message timestamp must be >= 0")
        if not self.reason:
            raise PipelineError("QoS message reason must not be empty")


class QosMonitor:
    """Collects QoS error messages, optionally mirroring them into the trace.

    By default the messages are *not* emitted as trace events: in the paper's
    setup the GStreamer error log is a side channel the evaluator reads, not
    part of the monitored trace, and mirroring the errors into the trace
    would make anomaly detection trivially easy (the detector would merely
    have to spot the ``qos_error`` event type).  Set ``mirror_to_trace=True``
    to model platforms whose tracing does capture framework error messages.
    """

    def __init__(
        self, tracer: HardwareTracer, core: int = 0, mirror_to_trace: bool = False
    ) -> None:
        self.tracer = tracer
        self.core = int(core)
        self.mirror_to_trace = bool(mirror_to_trace)
        self._messages: list[QosMessage] = []

    def report(
        self,
        timestamp_us: int,
        reason: str,
        frame_index: int = -1,
        lateness_us: float = 0.0,
        task: str = "sink",
    ) -> QosMessage:
        """Record a QoS violation (and trace it when mirroring is enabled)."""
        message = QosMessage(
            timestamp_us=int(timestamp_us),
            reason=reason,
            frame_index=frame_index,
            lateness_us=float(lateness_us),
        )
        self._messages.append(message)
        if self.mirror_to_trace:
            self.tracer.emit(
                message.timestamp_us,
                EventType.QOS_ERROR,
                core=self.core,
                task=task,
                args={
                    "reason": message.reason,
                    "frame": message.frame_index,
                    "lateness_us": round(message.lateness_us, 1),
                },
            )
        return message

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    @property
    def n_messages(self) -> int:
        """Total number of QoS errors reported."""
        return len(self._messages)

    def messages(self) -> list[QosMessage]:
        """All reported messages in chronological order."""
        return list(self._messages)

    def __iter__(self) -> Iterator[QosMessage]:
        return iter(self._messages)

    def timestamps_us(self) -> list[int]:
        """Timestamps of all messages (chronological)."""
        return [message.timestamp_us for message in self._messages]

    def messages_between(self, start_us: float, end_us: float) -> list[QosMessage]:
        """Messages with ``start_us <= t < end_us``."""
        return [
            message
            for message in self._messages
            if start_us <= message.timestamp_us < end_us
        ]

    @staticmethod
    def count_by_reason(messages: Iterable[QosMessage]) -> dict[str, int]:
        """Histogram of message reasons (used in experiment reports)."""
        counts: dict[str, int] = {}
        for message in messages:
            counts[message.reason] = counts.get(message.reason, 0) + 1
        return counts
