"""Video workload description.

The paper decodes a 6 h 17 m video with GStreamer.  The simulated equivalent
is a :class:`VideoWorkload`: a deterministic sequence of frames organised in
GOPs (one I frame followed by P and B frames), each with a decode cost drawn
from a frame-kind-dependent distribution.  The workload is the *regular*
behaviour the detector learns; the per-frame jitter keeps the reference model
from collapsing to a single point.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator

import numpy as np

from ..config import MediaConfig
from ..errors import PipelineError

__all__ = ["FrameKind", "FrameDescriptor", "VideoWorkload"]


class FrameKind(str, Enum):
    """Kinds of video frames in a GOP."""

    I = "I"
    P = "P"
    B = "B"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Relative decode cost of each frame kind (I frames are the heaviest).
_KIND_COST_FACTOR = {FrameKind.I: 1.8, FrameKind.P: 1.0, FrameKind.B: 0.7}

#: Fraction of the frame period spent decoding an average P frame on an
#: unloaded core.  0.35 means a 40 ms frame period costs ~14 ms of CPU,
#: leaving enough headroom to catch up after perturbations, as a real
#: software decoder on a laptop-class core does.
_BASE_DECODE_FRACTION = 0.35

#: CPU cost of the colour-space conversion, as a fraction of the frame period.
_CONVERT_FRACTION = 0.05


@dataclass(frozen=True)
class FrameDescriptor:
    """One frame of the video workload.

    Attributes
    ----------
    index:
        Frame number (0-based, presentation order).
    kind:
        I, P or B frame.
    presentation_us:
        Time at which the sink should display the frame.
    decode_cost_us:
        CPU time required to decode the frame on an unloaded nominal core.
    convert_cost_us:
        CPU time required for the colour-space conversion stage.
    size_bytes:
        Compressed size of the frame (used for demuxer / DMA payloads).
    """

    index: int
    kind: FrameKind
    presentation_us: int
    decode_cost_us: float
    convert_cost_us: float
    size_bytes: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise PipelineError(f"negative frame index: {self.index}")
        if self.decode_cost_us <= 0 or self.convert_cost_us <= 0:
            raise PipelineError("frame costs must be positive")


class VideoWorkload:
    """Deterministic frame sequence derived from a :class:`MediaConfig`."""

    def __init__(self, config: MediaConfig) -> None:
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        # Pre-draw per-frame jitter so iterating the workload twice yields
        # identical frames (the endurance run and the tests rely on this).
        self._jitter = self._rng.normal(
            loc=1.0, scale=config.frame_complexity_jitter, size=config.n_frames
        )
        self._jitter = np.clip(self._jitter, 0.4, 2.5)
        self._sizes = self._rng.integers(8_000, 60_000, size=config.n_frames)

    @property
    def n_frames(self) -> int:
        """Total number of frames in the workload."""
        return self.config.n_frames

    @property
    def frame_period_us(self) -> float:
        """Nominal inter-frame period in microseconds."""
        return self.config.frame_period_us

    def kind_of(self, index: int) -> FrameKind:
        """Frame kind of frame ``index`` according to the GOP structure."""
        position = index % self.config.gop_length
        if position == 0:
            return FrameKind.I
        if position % 3 == 0:
            return FrameKind.P
        return FrameKind.B

    def frame(self, index: int) -> FrameDescriptor:
        """Return the descriptor of frame ``index``."""
        if not 0 <= index < self.n_frames:
            raise PipelineError(
                f"frame index {index} out of range [0, {self.n_frames})"
            )
        kind = self.kind_of(index)
        period = self.frame_period_us
        base_cost = (
            period
            * _BASE_DECODE_FRACTION
            * self.config.frame_complexity_mean
            * _KIND_COST_FACTOR[kind]
        )
        decode_cost = float(base_cost * self._jitter[index])
        convert_cost = float(period * _CONVERT_FRACTION)
        size_factor = _KIND_COST_FACTOR[kind]
        return FrameDescriptor(
            index=index,
            kind=kind,
            presentation_us=int(round(index * period)),
            decode_cost_us=max(decode_cost, 100.0),
            convert_cost_us=max(convert_cost, 50.0),
            size_bytes=int(self._sizes[index] * size_factor),
        )

    def frames(self) -> Iterator[FrameDescriptor]:
        """Iterate over all frame descriptors in presentation order."""
        for index in range(self.n_frames):
            yield self.frame(index)

    def mean_decode_cost_us(self) -> float:
        """Average decode cost over the whole workload (analytic, no sampling)."""
        total = 0.0
        for index in range(self.n_frames):
            kind = self.kind_of(index)
            total += (
                self.frame_period_us
                * _BASE_DECODE_FRACTION
                * self.config.frame_complexity_mean
                * _KIND_COST_FACTOR[kind]
                * self._jitter[index]
            )
        return total / max(self.n_frames, 1)

    def audio_chunk_period_us(self) -> float:
        """Period between audio decode chunks (1024-sample chunks)."""
        return 1024 / self.config.audio_sample_rate_hz * 1e6
