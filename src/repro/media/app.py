"""Endurance-test run: platform + pipeline + perturbations, end to end.

:class:`EnduranceRun` is the simulated counterpart of the paper's
experimental setup (GStreamer decoding a long video on one core while a
heavy application perturbs it every few minutes).  Running it produces an
:class:`EnduranceTrace`: the full event trace, the QoS error messages and
the ground-truth perturbation intervals, i.e. everything the monitoring and
evaluation layers need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import EnduranceConfig
from ..errors import SimulationError
from ..logging_util import get_logger
from ..platform.cpu import Core
from ..platform.interrupt import TimerInterruptSource
from ..platform.memory import MemoryModel
from ..platform.scheduler import RoundRobinScheduler
from ..platform.simulator import Simulator
from ..platform.tracer import HardwareTracer
from ..trace.event import APPLICATION_SCOPE_TYPES, TraceEvent
from ..trace.stream import TraceStream
from .perturbation import PerturbationInjector, PerturbationInterval
from .pipeline import MediaPipeline
from .qos import QosMessage

__all__ = ["EnduranceRun", "EnduranceTrace"]

_LOGGER = get_logger("media.app")


@dataclass
class EnduranceTrace:
    """Everything produced by one endurance run.

    Attributes
    ----------
    events:
        Full, timestamp-ordered trace of the run.
    qos_messages:
        QoS error messages reported by the pipeline (ground truth, in the
        same role as GStreamer's error log in the paper).
    perturbation_intervals:
        Ground-truth perturbation intervals.
    duration_us:
        Simulated duration of the run.
    frames_displayed / frames_dropped:
        Playback outcome counters (diagnostics for reports).
    """

    events: list[TraceEvent]
    qos_messages: list[QosMessage]
    perturbation_intervals: list[PerturbationInterval]
    duration_us: int
    frames_displayed: int = 0
    frames_dropped: int = 0
    scheduler_jobs: int = 0
    core_utilisation: dict[int, float] = field(default_factory=dict)

    @property
    def n_events(self) -> int:
        """Number of trace events."""
        return len(self.events)

    @property
    def duration_s(self) -> float:
        """Simulated duration in seconds."""
        return self.duration_us / 1e6

    def stream(self) -> TraceStream:
        """Wrap the events in a fresh single-pass :class:`TraceStream`."""
        return TraceStream(iter(self.events))

    def qos_timestamps_us(self) -> list[int]:
        """Timestamps of every QoS error message."""
        return [message.timestamp_us for message in self.qos_messages]


class EnduranceRun:
    """Builds and executes one simulated endurance test."""

    def __init__(self, config: EnduranceConfig) -> None:
        self.config = config
        self.simulator = Simulator()
        event_filter = (
            APPLICATION_SCOPE_TYPES
            if config.platform.trace_scope == "application"
            else None
        )
        self.tracer = HardwareTracer(
            buffer_events=config.platform.trace_buffer_events,
            event_filter=event_filter,
        )
        self.cores = [
            Core(index=i, frequency_mhz=config.platform.core_frequency_mhz)
            for i in range(config.platform.n_cores)
        ]
        self.memory = MemoryModel()
        self.scheduler = RoundRobinScheduler(
            self.simulator,
            self.cores,
            self.tracer,
            memory=self.memory,
            quantum_us=config.platform.scheduler_quantum_us,
            context_switch_cost_us=config.platform.context_switch_cost_us,
        )
        self.pipeline = MediaPipeline.build(
            self.simulator, self.scheduler, self.tracer, config.media
        )
        self.timer = TimerInterruptSource(self.simulator, self.tracer)
        self.injector = PerturbationInjector(
            self.simulator,
            self.scheduler,
            self.tracer,
            config.perturbation,
            run_duration_s=config.media.duration_s,
        )
        self._executed = False

    @property
    def duration_us(self) -> int:
        """Planned duration of the run in microseconds."""
        return int(self.config.media.duration_s * 1e6)

    def run(self) -> EnduranceTrace:
        """Execute the simulation and return the resulting trace bundle."""
        if self._executed:
            raise SimulationError("an EnduranceRun can only be executed once")
        self._executed = True

        until_us = self.duration_us
        _LOGGER.info(
            "starting endurance run: %.0f s of media, %d perturbations",
            self.config.media.duration_s,
            len(self.injector.intervals),
        )
        self.timer.start(until_us)
        self.pipeline.start(until_us)
        self.injector.start()
        self.simulator.run(until_us=until_us)

        trace = EnduranceTrace(
            events=self.tracer.events(),
            qos_messages=self.pipeline.qos.messages(),
            perturbation_intervals=list(self.injector.intervals),
            duration_us=until_us,
            frames_displayed=self.pipeline.frames_displayed(),
            frames_dropped=self.pipeline.frames_dropped(),
            scheduler_jobs=self.scheduler.completed_jobs,
            core_utilisation={
                core.index: core.utilisation(until_us) for core in self.cores
            },
        )
        _LOGGER.info(
            "endurance run finished: %d events, %d QoS errors, %d/%d frames displayed",
            trace.n_events,
            len(trace.qos_messages),
            trace.frames_displayed,
            trace.frames_displayed + trace.frames_dropped,
        )
        return trace

