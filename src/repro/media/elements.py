"""Pipeline elements: demuxer, decoders, converter and display sink.

The element graph mirrors a typical GStreamer playback pipeline::

    demuxer ──▶ video decoder ──▶ converter ──▶ frame buffer ──▶ display sink
        └─────▶ audio decoder (lightweight, event-only)

Every element emits trace events through the platform tracer and the
CPU-hungry ones (video decoder, converter) execute their work as scheduler
jobs, so competing load slows them down realistically.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque

import numpy as np

from ..errors import PipelineError
from ..trace.event import EventType
from ..platform.scheduler import RoundRobinScheduler
from ..platform.simulator import Simulator
from ..platform.task import Task
from ..platform.tracer import HardwareTracer
from .bufferqueue import FrameBuffer
from .qos import QosMonitor
from .workload import FrameDescriptor, VideoWorkload

__all__ = ["Demuxer", "VideoDecoder", "AudioDecoder", "Converter", "DisplaySink"]


class Demuxer:
    """Reads the container and hands compressed frames to the video decoder.

    The demuxer runs ahead of playback but is gated by the downstream buffer:
    it only emits a new packet while the number of frames "in flight"
    (demuxed but not yet displayed) is below the buffer capacity, like a
    queue-limited GStreamer pipeline.
    """

    def __init__(
        self,
        simulator: Simulator,
        tracer: HardwareTracer,
        workload: VideoWorkload,
        buffer: FrameBuffer,
        core: int = 0,
        seed: int = 7,
    ) -> None:
        self.simulator = simulator
        self.tracer = tracer
        self.workload = workload
        self.buffer = buffer
        self.core = core
        self.next_frame_index = 0
        self.displayed_or_dropped = 0
        self.on_packet: Callable[[FrameDescriptor], None] | None = None
        self._rng = np.random.default_rng(seed)

    @property
    def in_flight(self) -> int:
        """Frames demuxed but not yet displayed or dropped."""
        return self.next_frame_index - self.displayed_or_dropped

    @property
    def exhausted(self) -> bool:
        """Whether every frame of the workload has been demuxed."""
        return self.next_frame_index >= self.workload.n_frames

    def frame_consumed(self) -> None:
        """Notify the demuxer that the sink displayed or dropped one frame."""
        self.displayed_or_dropped += 1
        self.pump()

    def pump(self) -> None:
        """Emit packets while the pipeline has room for more frames."""
        if self.on_packet is None:
            raise PipelineError("demuxer is not connected to a decoder")
        while not self.exhausted and self.in_flight < self.buffer.capacity:
            frame = self.workload.frame(self.next_frame_index)
            self.next_frame_index += 1
            now = self.simulator.now_us
            self.tracer.emit(
                now,
                EventType.SYSCALL_ENTER,
                core=self.core,
                task="demuxer",
                args={"syscall": "read"},
            )
            self.tracer.emit(
                now,
                EventType.DEMUX_PACKET,
                core=self.core,
                task="demuxer",
                args={"frame": frame.index, "kind": str(frame.kind), "bytes": frame.size_bytes},
            )
            # Reading the compressed frame from storage triggers DMA traffic
            # and, now and then, a page fault on the mapped file.
            self.tracer.emit(
                now,
                EventType.DMA_TRANSFER,
                core=self.core,
                task="demuxer",
                args={"bytes": frame.size_bytes, "direction": "storage"},
            )
            if self._rng.random() < 0.15:
                self.tracer.emit(
                    now,
                    EventType.PAGE_FAULT,
                    core=self.core,
                    task="demuxer",
                    args={"frame": frame.index},
                )
            self.tracer.emit(
                now,
                EventType.SYSCALL_EXIT,
                core=self.core,
                task="demuxer",
                args={"syscall": "read"},
            )
            self.on_packet(frame)


class VideoDecoder:
    """Decodes compressed frames one at a time on the CPU.

    Besides the ``frame_decode_start`` / ``frame_decode_end`` markers the
    decoder emits the fine-grained activity a real tracing infrastructure
    sees: bitstream cache misses at the start of a frame and one
    ``mb_row_decode`` event per macroblock row when the frame completes.
    The macroblock-row count scales with the frame kind and size, which is
    what gives each window a distinctive (but jittered) event mix.
    """

    def __init__(
        self,
        simulator: Simulator,
        scheduler: RoundRobinScheduler,
        tracer: HardwareTracer,
        core: int = 0,
        priority: int = 0,
        seed: int = 11,
    ) -> None:
        self.simulator = simulator
        self.scheduler = scheduler
        self.tracer = tracer
        self.core = core
        self.task = Task(name="video-decoder", priority=priority)
        self._pending: Deque[FrameDescriptor] = deque()
        self._busy = False
        self.frames_decoded = 0
        self.on_decoded: Callable[[FrameDescriptor], None] | None = None
        self._rng = np.random.default_rng(seed)

    @property
    def queue_length(self) -> int:
        """Number of packets waiting to be decoded."""
        return len(self._pending)

    def accept(self, frame: FrameDescriptor) -> None:
        """Queue a compressed frame for decoding."""
        self._pending.append(frame)
        self._maybe_start()

    def _maybe_start(self) -> None:
        if self._busy or not self._pending:
            return
        frame = self._pending.popleft()
        self._busy = True
        now = self.simulator.now_us
        self.tracer.emit(
            now,
            EventType.FRAME_DECODE_START,
            core=self.core,
            task=self.task.name,
            args={"frame": frame.index, "kind": str(frame.kind)},
        )
        # Fetching the bitstream misses in the cache a few times; the miss
        # count grows with the compressed frame size.
        n_misses = int(self._rng.poisson(2.0 + frame.size_bytes / 20_000.0))
        for _ in range(n_misses):
            self.tracer.emit(
                now,
                EventType.CACHE_MISS,
                core=self.core,
                task=self.task.name,
                args={"frame": frame.index},
            )
        self.scheduler.submit_work(
            self.task,
            frame.decode_cost_us,
            on_complete=lambda end_us, frame=frame: self._decoded(frame, end_us),
        )

    def _mb_rows_for(self, frame: FrameDescriptor) -> int:
        base = {"I": 14.0, "P": 10.0, "B": 8.0}.get(str(frame.kind), 10.0)
        return max(1, int(self._rng.normal(loc=base, scale=1.5)))

    def _decoded(self, frame: FrameDescriptor, end_us: int) -> None:
        if self.on_decoded is None:
            raise PipelineError("video decoder is not connected to a converter")
        self.frames_decoded += 1
        for row in range(self._mb_rows_for(frame)):
            self.tracer.emit(
                end_us,
                EventType.MB_ROW_DECODE,
                core=self.core,
                task=self.task.name,
                args={"frame": frame.index, "row": row},
            )
        self.tracer.emit(
            end_us,
            EventType.FRAME_DECODE_END,
            core=self.core,
            task=self.task.name,
            args={"frame": frame.index, "kind": str(frame.kind)},
        )
        self._busy = False
        self.on_decoded(frame)
        self._maybe_start()


class Converter:
    """Colour-space conversion stage between the decoder and the buffer."""

    def __init__(
        self,
        simulator: Simulator,
        scheduler: RoundRobinScheduler,
        tracer: HardwareTracer,
        buffer: FrameBuffer,
        core: int = 0,
        priority: int = 0,
    ) -> None:
        self.simulator = simulator
        self.scheduler = scheduler
        self.tracer = tracer
        self.buffer = buffer
        self.core = core
        self.task = Task(name="converter", priority=priority)
        self.frames_converted = 0
        self.frames_lost_to_overrun = 0

    def accept(self, frame: FrameDescriptor) -> None:
        """Convert ``frame`` then push it into the display buffer."""
        self.scheduler.submit_work(
            self.task,
            frame.convert_cost_us,
            on_complete=lambda end_us, frame=frame: self._converted(frame, end_us),
        )

    def _converted(self, frame: FrameDescriptor, end_us: int) -> None:
        self.frames_converted += 1
        self.tracer.emit(
            end_us,
            EventType.FRAME_CONVERT,
            core=self.core,
            task=self.task.name,
            args={"frame": frame.index},
        )
        if not self.buffer.push(frame, end_us, task=self.task.name):
            self.frames_lost_to_overrun += 1


class AudioDecoder:
    """Lightweight audio decoding stage.

    Audio decoding is cheap compared to video; it is modelled as a steady
    stream of ``audio_decode`` events (no scheduler jobs) so that every trace
    window contains a baseline of application activity even when the video
    path stalls — exactly like the audio thread of a real player.
    """

    def __init__(
        self,
        simulator: Simulator,
        tracer: HardwareTracer,
        workload: VideoWorkload,
        core: int = 0,
    ) -> None:
        self.simulator = simulator
        self.tracer = tracer
        self.workload = workload
        self.core = core
        self.chunks_decoded = 0

    def start(self, until_us: int) -> None:
        """Schedule periodic audio chunk decoding until ``until_us``."""
        period_us = max(1, int(round(self.workload.audio_chunk_period_us())))
        self.simulator.schedule_periodic(
            period_us, self._chunk, start_us=self.simulator.now_us + period_us,
            until_us=until_us,
        )

    def _chunk(self) -> None:
        self.chunks_decoded += 1
        now = self.simulator.now_us
        self.tracer.emit(
            now,
            EventType.AUDIO_DECODE,
            core=self.core,
            task="audio-decoder",
            args={"chunk": self.chunks_decoded},
        )
        # Every fourth chunk flushes the decoded samples to the audio device.
        if self.chunks_decoded % 4 == 0:
            self.tracer.emit(
                now,
                EventType.DMA_TRANSFER,
                core=self.core,
                task="audio-decoder",
                args={"bytes": 4096, "direction": "audio"},
            )


class DisplaySink:
    """Displays frames at the nominal frame rate and reports QoS violations.

    Every frame period the sink pops the oldest decoded frame:

    * no frame available → ``buffer_underrun`` + QoS ``underrun`` error;
    * frame later than ``resync_threshold_periods`` → the playback clock is
      rebased on the frame (``resync`` QoS error), the way a player resets
      A/V sync after a long stall;
    * frame older than ``drop_threshold_periods`` → the frame is dropped
      (``frame_drop`` + QoS ``frame_drop``) and the sink tries the next one,
      up to ``max_catchup_drops`` per tick — this is the GStreamer QoS
      mechanism that re-synchronises playback after a stall;
    * otherwise the frame is displayed (``frame_display`` + a ``dma_transfer``
      for the scan-out) and, if it is more than one period late, a
      ``late_frame`` QoS error is reported.
    """

    def __init__(
        self,
        simulator: Simulator,
        tracer: HardwareTracer,
        buffer: FrameBuffer,
        qos: QosMonitor,
        workload: VideoWorkload,
        core: int = 0,
        drop_threshold_periods: float = 1.0,
        max_catchup_drops: int = 3,
        resync_threshold_periods: float = 12.0,
    ) -> None:
        if drop_threshold_periods <= 0:
            raise PipelineError("drop_threshold_periods must be positive")
        if max_catchup_drops < 0:
            raise PipelineError("max_catchup_drops must be >= 0")
        if resync_threshold_periods <= drop_threshold_periods:
            raise PipelineError(
                "resync_threshold_periods must be larger than drop_threshold_periods"
            )
        self.simulator = simulator
        self.tracer = tracer
        self.buffer = buffer
        self.qos = qos
        self.workload = workload
        self.core = core
        self.drop_threshold_us = drop_threshold_periods * workload.frame_period_us
        self.max_catchup_drops = int(max_catchup_drops)
        self.resync_threshold_us = resync_threshold_periods * workload.frame_period_us
        self.frames_displayed = 0
        self.frames_dropped = 0
        self.underrun_ticks = 0
        self.resyncs = 0
        self.on_frame_consumed: Callable[[], None] | None = None
        self._playback_offset_us: float | None = None

    def start(self, until_us: int) -> None:
        """Schedule display ticks at the nominal frame rate until ``until_us``."""
        period_us = max(1, int(round(self.workload.frame_period_us)))
        self.simulator.schedule_periodic(
            period_us, self._tick, start_us=self.simulator.now_us + period_us,
            until_us=until_us,
        )

    def _consumed(self) -> None:
        if self.on_frame_consumed is not None:
            self.on_frame_consumed()

    def _lateness(self, frame: FrameDescriptor, now: int) -> float:
        # Playback clock starts when the first frame is displayed, so the
        # pipeline fill time does not count as lateness.
        if self._playback_offset_us is None:
            self._playback_offset_us = now - frame.presentation_us
        return (now - self._playback_offset_us) - frame.presentation_us

    def _tick(self) -> None:
        now = self.simulator.now_us
        self.tracer.emit(now, EventType.VSYNC, core=self.core, task="sink", args={})
        drops_this_tick = 0
        while True:
            frame = self.buffer.pop(now, task="sink")
            if frame is None:
                self.underrun_ticks += 1
                self.qos.report(now, "underrun", frame_index=-1, task="sink")
                self.buffer.emit_level(now)
                return
            lateness = self._lateness(frame, now)
            if lateness > self.resync_threshold_us:
                # Long stall: rebase the playback clock on this frame, like a
                # player re-synchronising after buffering.
                self.resyncs += 1
                self._playback_offset_us = now - frame.presentation_us
                self.qos.report(
                    now, "resync", frame_index=frame.index, lateness_us=lateness,
                    task="sink",
                )
                lateness = 0.0
            if lateness > self.drop_threshold_us and drops_this_tick < self.max_catchup_drops:
                drops_this_tick += 1
                self.frames_dropped += 1
                self.tracer.emit(
                    now,
                    EventType.FRAME_DROP,
                    core=self.core,
                    task="sink",
                    args={"frame": frame.index, "lateness_us": round(lateness, 1)},
                )
                self.qos.report(
                    now, "frame_drop", frame_index=frame.index, lateness_us=lateness,
                    task="sink",
                )
                self._consumed()
                continue
            self.frames_displayed += 1
            self.tracer.emit(
                now,
                EventType.FRAME_DISPLAY,
                core=self.core,
                task="sink",
                args={"frame": frame.index},
            )
            self.tracer.emit(
                now,
                EventType.DMA_TRANSFER,
                core=self.core,
                task="sink",
                args={"bytes": frame.size_bytes, "direction": "scanout"},
            )
            if lateness > self.workload.frame_period_us:
                self.qos.report(
                    now, "late_frame", frame_index=frame.index, lateness_us=lateness,
                    task="sink",
                )
            self.buffer.emit_level(now)
            self._consumed()
            return
