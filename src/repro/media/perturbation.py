"""Perturbation injection.

The paper perturbs the system every 3 minutes for 20 seconds with a "heavy
processing application".  The simulated equivalent spawns one or more
CPU-bound hog tasks that continuously submit work to the scheduler during
each perturbation interval, stealing CPU time (and adding memory contention)
from the decoder — which is what eventually produces buffer underruns and
QoS errors downstream.

The injector also returns the exact list of perturbation intervals, which is
the first half of the ground truth used for labelling (the second half being
the QoS error messages).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import PerturbationConfig
from ..errors import SimulationError
from ..trace.event import EventType
from ..platform.scheduler import RoundRobinScheduler
from ..platform.simulator import Simulator
from ..platform.task import Task
from ..platform.tracer import HardwareTracer

__all__ = ["PerturbationInterval", "PerturbationInjector"]

#: Service time of one hog job; small enough that hogs stop promptly at the
#: end of an interval, large enough to keep scheduling overhead reasonable.
_HOG_JOB_US = 8_000


@dataclass(frozen=True)
class PerturbationInterval:
    """One perturbation interval, in seconds since the start of the run."""

    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise SimulationError(
                f"perturbation interval ends before it starts: {self}"
            )

    @property
    def start_us(self) -> int:
        """Interval start in microseconds."""
        return int(self.start_s * 1e6)

    @property
    def end_us(self) -> int:
        """Interval end in microseconds."""
        return int(self.end_s * 1e6)

    @property
    def duration_s(self) -> float:
        """Interval length in seconds."""
        return self.end_s - self.start_s

    def contains(self, timestamp_us: float) -> bool:
        """Whether ``timestamp_us`` falls inside the interval."""
        return self.start_us <= timestamp_us < self.end_us


def plan_intervals(
    config: PerturbationConfig, run_duration_s: float
) -> list[PerturbationInterval]:
    """Compute the perturbation intervals for a run of ``run_duration_s``.

    Intervals start at ``start_offset_s`` and repeat every ``period_s``;
    optional uniform jitter shifts each start.  Intervals that would extend
    past the end of the run are discarded (a truncated perturbation would
    bias the ground-truth delays).
    """
    if run_duration_s <= 0:
        raise SimulationError("run_duration_s must be positive")
    rng = np.random.default_rng(config.seed)
    intervals: list[PerturbationInterval] = []
    start = config.start_offset_s
    while True:
        jitter = rng.uniform(-config.jitter_s, config.jitter_s) if config.jitter_s else 0.0
        begin = max(0.0, start + jitter)
        end = begin + config.duration_s
        if end >= run_duration_s:
            break
        intervals.append(PerturbationInterval(begin, end))
        start += config.period_s
    return intervals


class PerturbationInjector:
    """Schedules CPU-hog activity during the configured intervals."""

    def __init__(
        self,
        simulator: Simulator,
        scheduler: RoundRobinScheduler,
        tracer: HardwareTracer,
        config: PerturbationConfig,
        run_duration_s: float,
    ) -> None:
        self.simulator = simulator
        self.scheduler = scheduler
        self.tracer = tracer
        self.config = config
        self.intervals = plan_intervals(config, run_duration_s)
        self._n_hogs = max(1, int(round(config.load_factor)))
        self._hog_tasks = [
            Task(name=f"cpu-hog-{index}", priority=0) for index in range(self._n_hogs)
        ]
        self.jobs_injected = 0

    def start(self) -> None:
        """Schedule the start of every perturbation interval."""
        for interval in self.intervals:
            self.simulator.schedule_at(
                interval.start_us, lambda interval=interval: self._begin(interval)
            )

    # ------------------------------------------------------------------ #
    # Internal machinery
    # ------------------------------------------------------------------ #
    def _begin(self, interval: PerturbationInterval) -> None:
        now = self.simulator.now_us
        self.tracer.emit(
            now,
            EventType.LOAD_BURST,
            task="cpu-hog",
            args={"until_us": interval.end_us, "hogs": self._n_hogs},
        )
        for task in self._hog_tasks:
            self._submit_hog_job(task, interval)

    def _submit_hog_job(self, task: Task, interval: PerturbationInterval) -> None:
        now = self.simulator.now_us
        if now >= interval.end_us:
            self.tracer.emit(now, EventType.LOAD_DONE, task=task.name, args={})
            return
        self.jobs_injected += 1
        self.scheduler.submit_work(
            task,
            _HOG_JOB_US,
            on_complete=lambda _t, task=task, interval=interval: self._submit_hog_job(
                task, interval
            ),
        )
