"""Multimedia application substrate.

This subpackage models the application the paper monitors — a GStreamer-like
video decoding pipeline — on top of the :mod:`repro.platform` simulator:

* :mod:`~repro.media.workload` describes the video being decoded (frame
  types, per-frame decode cost, audio chunks);
* :mod:`~repro.media.elements` implements the pipeline elements (demuxer,
  video/audio decoders, converter, display sink);
* :mod:`~repro.media.bufferqueue` is the jitter-absorbing frame queue whose
  draining delays the observable impact of perturbations (the paper's
  Δs / Δe);
* :mod:`~repro.media.qos` collects the QoS error messages used as ground
  truth;
* :mod:`~repro.media.perturbation` injects the competing CPU load;
* :mod:`~repro.media.app` assembles everything into an endurance run that
  produces the trace consumed by the online monitor.
"""

from .workload import FrameKind, FrameDescriptor, VideoWorkload
from .bufferqueue import FrameBuffer
from .qos import QosMessage, QosMonitor
from .perturbation import PerturbationInjector, PerturbationInterval
from .elements import Demuxer, VideoDecoder, AudioDecoder, Converter, DisplaySink
from .pipeline import MediaPipeline
from .app import EnduranceRun, EnduranceTrace

__all__ = [
    "FrameKind",
    "FrameDescriptor",
    "VideoWorkload",
    "FrameBuffer",
    "QosMessage",
    "QosMonitor",
    "PerturbationInjector",
    "PerturbationInterval",
    "Demuxer",
    "VideoDecoder",
    "AudioDecoder",
    "Converter",
    "DisplaySink",
    "MediaPipeline",
    "EnduranceRun",
    "EnduranceTrace",
]
