"""Parsed module sources and the project view the checkers consume.

:class:`ModuleSource` is one parsed file: path, module name, source lines,
AST (with parent links), and suppression pragmas.  :class:`Project` is the
set of modules under analysis — cross-file checkers (layering, dead code,
config-knob parity) work against it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from .suppress import Suppressions, parse_suppressions

#: Attribute added to every AST node, pointing at its parent node.
PARENT_ATTR = "_repro_parent"


def attach_parents(tree: ast.AST) -> None:
    """Give every node a ``_repro_parent`` link (None on the root)."""
    setattr(tree, PARENT_ATTR, None)
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            setattr(child, PARENT_ATTR, node)


def parent_of(node: ast.AST) -> ast.AST | None:
    """The parent of ``node`` (requires :func:`attach_parents`)."""
    return getattr(node, PARENT_ATTR, None)


def enclosing_function(
    node: ast.AST,
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """The innermost function definition containing ``node``, if any."""
    current = parent_of(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = parent_of(current)
    return None


def module_name_for(path: Path, package_roots: tuple[str, ...] = ("repro",)) -> str:
    """Dotted module name of ``path``, rooted at the first known package.

    Falls back to the stem when the path does not sit under a known
    package root (fixture files in tests, scratch files).
    """
    parts = list(path.with_suffix("").parts)
    for root in package_roots:
        if root in parts:
            parts = parts[parts.index(root) :]
            break
    else:
        return path.stem
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class ModuleSource:
    """One parsed source file, ready for checking."""

    path: Path
    display_path: str
    module: str
    text: str
    lines: list[str]
    tree: ast.Module
    suppressions: Suppressions

    @classmethod
    def parse(cls, path: Path, display_path: str | None = None) -> "ModuleSource":
        """Read and parse ``path`` (raises ``SyntaxError`` on broken files)."""
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        attach_parents(tree)
        return cls(
            path=path,
            display_path=display_path if display_path is not None else str(path),
            module=module_name_for(path),
            text=text,
            lines=text.splitlines(),
            tree=tree,
            suppressions=parse_suppressions(text),
        )

    def line_text(self, line: int) -> str:
        """Stripped text of 1-based ``line`` ('' when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


@dataclass
class Project:
    """Every module under analysis, plus parse failures.

    Modules whose display path is in :attr:`usage_only` contribute symbol
    *references* to cross-file checkers (dead code, layering exemptions)
    but never receive findings themselves — the driver loads the test,
    benchmark and example trees this way, so a symbol consumed only by the
    tier-1 suite is not reported as dead.
    """

    modules: list[ModuleSource] = field(default_factory=list)
    #: (display_path, message) of files that failed to parse.
    parse_errors: list[tuple[str, str]] = field(default_factory=list)
    #: display paths loaded for reference-tracking only (no findings).
    usage_only: set[str] = field(default_factory=set)

    def __iter__(self) -> Iterator[ModuleSource]:
        return iter(self.modules)

    def checked_modules(self) -> Iterator[ModuleSource]:
        """Modules that receive findings (everything not usage-only)."""
        for source in self.modules:
            if source.display_path not in self.usage_only:
                yield source

    def by_module(self) -> dict[str, ModuleSource]:
        """Mapping of dotted module name to source."""
        return {source.module: source for source in self.modules}

    @staticmethod
    def _expand(paths: list[Path]) -> list[Path]:
        files: list[Path] = []
        for path in paths:
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            elif path.suffix == ".py":
                files.append(path)
        return files

    @classmethod
    def load(
        cls,
        paths: list[Path],
        root: Path | None = None,
        usage_roots: list[Path] | None = None,
    ) -> "Project":
        """Collect and parse every ``.py`` file under ``paths``.

        ``root`` (default: the current directory) is used to relativise
        display paths so fingerprints do not embed absolute paths.
        ``usage_roots`` are loaded as usage-only modules.
        """
        base = root if root is not None else Path.cwd()
        project = cls()
        seen: set[Path] = set()

        def _add(file_path: Path, usage: bool) -> None:
            resolved = file_path.resolve()
            if resolved in seen:
                return
            seen.add(resolved)
            try:
                display = (
                    str(file_path.relative_to(base))
                    if file_path.is_absolute()
                    else str(file_path)
                )
            except ValueError:
                display = str(file_path)
            try:
                project.modules.append(ModuleSource.parse(file_path, display))
            except SyntaxError as exc:
                if not usage:
                    project.parse_errors.append(
                        (display, f"syntax error: {exc.msg} (line {exc.lineno})")
                    )
                return
            except (OSError, UnicodeDecodeError) as exc:
                if not usage:
                    project.parse_errors.append((display, f"unreadable: {exc}"))
                return
            if usage:
                project.usage_only.add(display)

        for file_path in cls._expand(paths):
            _add(file_path, usage=False)
        for file_path in cls._expand(usage_roots or []):
            _add(file_path, usage=True)
        return project
