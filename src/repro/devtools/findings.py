"""Finding model shared by every checker and the driver.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`Finding.fingerprint` identifies the finding *content-wise* — rule,
file and the stripped text of the offending line — rather than by line
number, so baselined findings survive unrelated edits above them.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any


class Severity(enum.Enum):
    """How bad a finding is.  The driver fails on any *new* finding of
    either severity; the split exists for reporting and triage."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    rule:
        Rule identifier, e.g. ``"FS102"``.
    path:
        Path of the offending file, as given to the driver (kept relative
        when the driver was handed relative paths, so fingerprints are
        machine-independent).
    line / column:
        1-based line and 0-based column of the violation.
    message:
        Human-readable description, specific to the occurrence.
    severity:
        :class:`Severity` of the rule.
    source_line:
        The stripped text of the offending source line (used for
        line-move-tolerant baseline fingerprints).
    """

    rule: str
    path: str
    line: int
    column: int
    message: str
    severity: Severity = Severity.ERROR
    source_line: str = field(default="", compare=False)

    def fingerprint(self) -> str:
        """Content hash identifying this finding across line moves."""
        digest = hashlib.sha256(
            f"{self.rule}\x1f{self.path}\x1f{self.source_line}".encode("utf-8")
        )
        return digest.hexdigest()[:20]

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (the driver's ``--json`` output schema)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "severity": self.severity.value,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }

    def render(self) -> str:
        """One-line text form, editor-clickable (``path:line:col``)."""
        return (
            f"{self.path}:{self.line}:{self.column + 1}: "
            f"{self.severity.value} {self.rule}: {self.message}"
        )
