"""Static-analysis driver: ``python -m repro.devtools.check [paths...]``.

Runs every registered checker over the given paths (default:
``src/repro``), applies suppressions and the committed baseline, and
reports the remaining findings.

Exit status:

* ``0`` — no new findings (baselined findings may exist; listed with
  ``--show-baselined``).
* ``1`` — new findings (or parse errors in checked files).
* ``2`` — bad invocation.

Modes:

* default — human-readable text report.
* ``--format json`` — machine-readable: ``{"findings": [...],
  "baselined": N, "parse_errors": [...], "exit_code": N}``.
* ``--write-baseline`` — record the current findings as the new baseline
  (exit 0); the diff of ``baseline.json`` is then reviewed like code.
* ``--select RULES`` / ``--ignore RULES`` — comma-separated rule-id
  filters applied before baselining.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterable, Sequence

from .baseline import DEFAULT_BASELINE, Baseline
from .checkers import ALL_CHECKERS, rule_catalogue
from .findings import Finding
from .source import Project

#: Trees parsed for symbol references (dead code) but never checked.
DEFAULT_USAGE_ROOTS = ("tests", "benchmarks", "examples", "scripts")


def collect_findings(project: Project) -> list[Finding]:
    """Run every checker; filter suppressed findings; stable-sort."""
    checked_paths = {source.display_path for source in project.checked_modules()}
    suppressions = {
        source.display_path: source.suppressions for source in project
    }
    raw: list[Finding] = []
    for checker in ALL_CHECKERS:
        for source in project.checked_modules():
            raw.extend(checker.check_module(source))
        raw.extend(checker.check_project(project))
    kept: list[Finding] = []
    for finding in raw:
        if finding.path not in checked_paths:
            continue
        suppression = suppressions.get(finding.path)
        if suppression is not None and suppression.is_suppressed(finding.rule, finding.line):
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.column, f.rule, f.message))
    return kept


def _filter_rules(
    findings: Iterable[Finding],
    select: frozenset[str] | None,
    ignore: frozenset[str],
) -> list[Finding]:
    result = []
    for finding in findings:
        if select is not None and finding.rule not in select:
            continue
        if finding.rule in ignore:
            continue
        result.append(finding)
    return result


def _parse_rule_set(text: str | None) -> frozenset[str]:
    if not text:
        return frozenset()
    return frozenset(part.strip() for part in text.split(",") if part.strip())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.check",
        description="Run the repo's static-analysis suite.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="directory display paths are relative to (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help=f"baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format",
    )
    parser.add_argument("--select", help="comma-separated rule ids to run exclusively")
    parser.add_argument("--ignore", help="comma-separated rule ids to skip")
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="also list findings covered by the baseline",
    )
    parser.add_argument(
        "--no-usage-roots",
        action="store_true",
        help="do not scan tests/benchmarks/examples for symbol usage",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _print_rules() -> None:
    for rule_id, rule in sorted(rule_catalogue().items()):
        print(f"{rule_id}  {rule.severity.value:<7}  {rule.summary}")


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rules()
        return 0

    known_rules = set(rule_catalogue())
    select = _parse_rule_set(args.select) or None
    ignore = _parse_rule_set(args.ignore)
    for rule_id in (select or frozenset()) | ignore:
        if rule_id not in known_rules:
            print(f"error: unknown rule id {rule_id!r}", file=sys.stderr)
            return 2

    root = Path(args.root)
    paths = [Path(p) for p in args.paths]
    for path in paths:
        if not path.exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2
    usage_roots = (
        []
        if args.no_usage_roots
        else [root / name for name in DEFAULT_USAGE_ROOTS if (root / name).is_dir()]
    )
    project = Project.load(paths, root=root, usage_roots=usage_roots)

    findings = _filter_rules(collect_findings(project), select, ignore)

    baseline_path = Path(args.baseline)
    if args.write_baseline:
        Baseline.from_findings(findings).save(baseline_path)
        print(
            f"baseline written: {len(findings)} finding(s) -> {baseline_path}",
            file=sys.stderr,
        )
        return 0

    baseline = Baseline() if args.no_baseline else Baseline.load(baseline_path)
    new, baselined = baseline.partition(findings)

    exit_code = 1 if (new or project.parse_errors) else 0

    if args.format == "json":
        payload = {
            "findings": [finding.to_dict() for finding in new],
            "baselined": len(baselined),
            "parse_errors": [
                {"path": path, "message": message}
                for path, message in project.parse_errors
            ],
            "exit_code": exit_code,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return exit_code

    for path, message in project.parse_errors:
        print(f"{path}: error PARSE: {message}")
    for finding in new:
        print(finding.render())
    if args.show_baselined:
        for finding in baselined:
            print(f"[baselined] {finding.render()}")
    checked = sum(1 for _ in project.checked_modules())
    summary = (
        f"checked {checked} file(s): {len(new)} new finding(s), "
        f"{len(baselined)} baselined"
    )
    if project.parse_errors:
        summary += f", {len(project.parse_errors)} parse error(s)"
    print(summary, file=sys.stderr)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
