"""Suppression pragmas: per-line, per-file, and marker annotations.

Syntax (all inside comments, so the runtime never sees them)::

    do_risky_thing()            # repro: ignore[TD201]
    do_risky_thing()            # repro: ignore[TD201,DT302]
    do_risky_thing()            # repro: ignore          (every rule)

    # repro: ignore-file[DT302]        (first 25 lines of the module)

    _STAGING: dict | None = None      # repro: fork-shared   (rule FS102)

``ignore`` applies to findings reported *on the commented line* (for a
multi-line statement, any line the statement spans works — checkers report
at the statement's first line, and the matcher also honours a pragma on
the statement's last line via the finding's source line).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

#: How deep into the file ``ignore-file`` pragmas are honoured.
FILE_PRAGMA_MAX_LINE = 25

_IGNORE_RE = re.compile(r"#\s*repro:\s*ignore(?:\[(?P<rules>[\w\s,.-]*)\])?")
_IGNORE_FILE_RE = re.compile(r"#\s*repro:\s*ignore-file\[(?P<rules>[\w\s,.-]*)\]")
_MARKER_RE = re.compile(r"#\s*repro:\s*(?P<marker>[a-z][a-z0-9-]*)\b")

#: Markers that are *annotations* consumed by specific rules, not
#: suppressions (rule modules look these up via :meth:`Suppressions.markers_on`).
KNOWN_MARKERS = frozenset({"fork-shared"})


def _split_rules(text: str | None) -> frozenset[str]:
    if text is None:
        return frozenset()
    return frozenset(part.strip() for part in text.split(",") if part.strip())


@dataclass
class Suppressions:
    """Parsed suppression state of one module."""

    #: line -> rules silenced on that line (empty frozenset = all rules).
    line_rules: dict[int, frozenset[str]] = field(default_factory=dict)
    #: rules silenced for the whole file.
    file_rules: frozenset[str] = frozenset()
    #: line -> annotation markers present on that line (e.g. "fork-shared").
    line_markers: dict[int, frozenset[str]] = field(default_factory=dict)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is silenced at ``line``."""
        if rule in self.file_rules:
            return True
        if line in self.line_rules:
            rules = self.line_rules[line]
            return not rules or rule in rules
        return False

    def markers_on(self, first_line: int, last_line: int | None = None) -> frozenset[str]:
        """Annotation markers present on any line of ``[first, last]``."""
        last = last_line if last_line is not None else first_line
        found: set[str] = set()
        for line in range(first_line, last + 1):
            found |= self.line_markers.get(line, frozenset())
        return frozenset(found)


def parse_suppressions(source: str) -> Suppressions:
    """Extract every suppression pragma and marker from ``source``.

    Uses :mod:`tokenize` so pragmas inside string literals are never
    misread as suppressions.  A syntactically broken file (tokenize error)
    yields an empty suppression set — the driver reports the parse error
    separately.
    """
    result = Suppressions()
    file_rules: set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            text = token.string
            line = token.start[0]
            match = _IGNORE_FILE_RE.search(text)
            if match is not None and line <= FILE_PRAGMA_MAX_LINE:
                file_rules |= _split_rules(match.group("rules"))
                continue
            match = _IGNORE_RE.search(text)
            if match is not None:
                result.line_rules[line] = _split_rules(match.group("rules"))
                continue
            match = _MARKER_RE.search(text)
            if match is not None and match.group("marker") in KNOWN_MARKERS:
                markers = set(result.line_markers.get(line, frozenset()))
                markers.add(match.group("marker"))
                result.line_markers[line] = frozenset(markers)
    except tokenize.TokenError:
        pass
    result.file_rules = frozenset(file_rules)
    return result
