"""Committed baseline of grandfathered findings.

The baseline lets the gate be adopted (and new rules be added) without a
flag day: pre-existing findings are recorded once, and from then on the
driver fails only on findings *not* in the baseline.  Entries are keyed by
:meth:`~repro.devtools.findings.Finding.fingerprint` — rule + path +
offending line *content* — with multiplicity, so they tolerate the line
moving but not the violation being duplicated.

The file format is deliberately reviewable JSON: sorted entries carrying
the rule, path, and line text next to each fingerprint, so a baseline diff
in review shows exactly which violations were grandfathered or retired.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Finding

#: Default baseline location, resolved against the working directory.
DEFAULT_BASELINE = Path("src/repro/devtools/baseline.json")

_FORMAT_VERSION = 1


@dataclass
class Baseline:
    """Multiset of grandfathered finding fingerprints."""

    counts: Counter = field(default_factory=Counter)
    #: fingerprint -> reviewable context (rule, path, line text).
    context: dict[str, dict[str, str]] = field(default_factory=dict)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        baseline = cls()
        for finding in findings:
            fingerprint = finding.fingerprint()
            baseline.counts[fingerprint] += 1
            baseline.context.setdefault(
                fingerprint,
                {
                    "rule": finding.rule,
                    "path": finding.path,
                    "source_line": finding.source_line,
                },
            )
        return baseline

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        baseline = cls()
        for entry in data.get("findings", []):
            fingerprint = entry["fingerprint"]
            baseline.counts[fingerprint] += int(entry.get("count", 1))
            baseline.context.setdefault(
                fingerprint,
                {
                    "rule": entry.get("rule", ""),
                    "path": entry.get("path", ""),
                    "source_line": entry.get("source_line", ""),
                },
            )
        return baseline

    def save(self, path: Path) -> None:
        """Write the baseline, sorted for stable diffs."""
        entries = []
        for fingerprint in sorted(self.counts):
            info = self.context.get(fingerprint, {})
            entries.append(
                {
                    "fingerprint": fingerprint,
                    "count": self.counts[fingerprint],
                    "rule": info.get("rule", ""),
                    "path": info.get("path", ""),
                    "source_line": info.get("source_line", ""),
                }
            )
        entries.sort(key=lambda entry: (entry["rule"], entry["path"], entry["fingerprint"]))
        payload = {"version": _FORMAT_VERSION, "findings": entries}
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    def partition(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """Split ``findings`` into (new, baselined), consuming multiplicity.

        Findings are matched in report order; if the baseline holds N
        copies of a fingerprint, the first N occurrences are grandfathered
        and any further ones are new.
        """
        remaining = Counter(self.counts)
        new: list[Finding] = []
        old: list[Finding] = []
        for finding in findings:
            fingerprint = finding.fingerprint()
            if remaining[fingerprint] > 0:
                remaining[fingerprint] -= 1
                old.append(finding)
            else:
                new.append(finding)
        return new, old
