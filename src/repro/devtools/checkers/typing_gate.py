"""Annotation-coverage gate (TY701) over the strict layers.

CI runs real ``mypy`` (see pyproject ``[tool.mypy]``) over
``repro.trace``, ``repro.analysis``, ``repro.errors`` and
``repro.config``; this rule is the locally runnable proxy for its
``disallow_untyped_defs``/``disallow_incomplete_defs`` core, so the
container (which has no mypy) still enforces the same floor: every
function in a strict layer annotates its return type and every parameter
except ``self``/``cls``.
"""

from __future__ import annotations

from typing import Iterator

from ..findings import Finding, Severity
from ..source import ModuleSource
from .base import Checker, Rule, walk_functions

#: Layers under the strict-typing gate (mirrors [tool.mypy] in pyproject).
STRICT_LAYERS = (
    "repro.trace",
    "repro.analysis",
    "repro.errors",
    "repro.config",
    "repro.testing",
)


def _in_strict_layer(module: str) -> bool:
    return any(
        module == layer or module.startswith(layer + ".") for layer in STRICT_LAYERS
    )


class TypingGateChecker(Checker):
    name = "typing-gate"
    rules = (
        Rule(
            "TY701",
            Severity.ERROR,
            "function in a strict layer missing parameter or return annotations",
        ),
    )

    def check_module(self, source: ModuleSource) -> Iterator[Finding]:
        if not _in_strict_layer(source.module):
            return
        for function in walk_functions(source.tree):
            if function.name.startswith("__") and function.name.endswith("__"):
                if function.name not in {"__init__", "__call__"}:
                    continue  # dunder protocol signatures are fixed anyway
            missing: list[str] = []
            args = function.args
            positional = args.posonlyargs + args.args
            for index, arg in enumerate(positional):
                if index == 0 and arg.arg in {"self", "cls"}:
                    continue
                if arg.annotation is None:
                    missing.append(arg.arg)
            for arg in args.kwonlyargs:
                if arg.annotation is None:
                    missing.append(arg.arg)
            if args.vararg is not None and args.vararg.annotation is None:
                missing.append("*" + args.vararg.arg)
            if args.kwarg is not None and args.kwarg.annotation is None:
                missing.append("**" + args.kwarg.arg)
            if function.returns is None and function.name != "__init__":
                missing.append("return")
            if missing:
                yield self.finding(
                    "TY701",
                    source,
                    function,
                    f"{function.name}() in strict layer {source.module} is "
                    f"missing annotations for: {', '.join(missing)}",
                )
