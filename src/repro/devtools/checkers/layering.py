"""Layering rules (LY4xx): the module dependency DAG.

The package layers, leaf-ward to root-ward::

    errors, version, logging_util          (leaves: import nothing of ours)
    config                                  -> errors
    testing                                 -> errors  (fault-injection hooks)
    trace                                   -> errors, config, logging_util,
                                               testing
    platform                                -> + trace
    media                                   -> + platform
    analysis                                -> errors, config, trace,
                                               media, logging_util, testing
    experiments                             -> everything below cli
    devtools                                -> errors only
    cli                                     -> everything (except devtools)
    repro/__init__                          -> facade, re-exports freely

* **LY401** — an import that violates the DAG (e.g. ``trace`` importing
  ``analysis`` would invert the pipeline and invite cycles).
* **LY402** — nothing outside ``repro.cli`` imports ``repro.cli``; the
  CLI is the outermost shell, not a library.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding, Severity
from ..source import ModuleSource
from .base import Checker, Rule

#: layer -> layers it may import from (besides itself).
ALLOWED_IMPORTS: dict[str, frozenset[str]] = {
    "errors": frozenset(),
    "version": frozenset(),
    "logging_util": frozenset(),
    "config": frozenset({"errors"}),
    "testing": frozenset({"errors"}),
    "trace": frozenset({"errors", "config", "logging_util", "testing"}),
    "platform": frozenset({"errors", "config", "logging_util", "trace"}),
    "media": frozenset({"errors", "config", "logging_util", "trace", "platform"}),
    "analysis": frozenset(
        {"errors", "config", "logging_util", "trace", "media", "testing"}
    ),
    "experiments": frozenset(
        {"errors", "config", "logging_util", "trace", "platform", "media", "analysis"}
    ),
    "devtools": frozenset({"errors", "version"}),
    "cli": frozenset(
        {
            "errors",
            "version",
            "config",
            "logging_util",
            "trace",
            "platform",
            "media",
            "analysis",
            "experiments",
            "testing",
        }
    ),
}


def _layer_of(module: str) -> str | None:
    """Layer name for a dotted ``repro...`` module, else None."""
    if module == "repro" or not module.startswith("repro."):
        return None
    return module.split(".")[1]


def _imported_repro_modules(source: ModuleSource) -> Iterator[tuple[str, ast.stmt]]:
    """Absolute dotted names of every repro-internal import in ``source``."""
    # Package of this module: for foo/__init__.py the module name *is* the
    # package; for plain modules it is the name minus the last segment.
    parts = source.module.split(".")
    package = parts if source.path.name == "__init__.py" else parts[:-1]
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    yield alias.name, node
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: level=1 is this package, each extra
                # level one package up.
                base = package[: len(package) - (node.level - 1)]
                if not base:
                    continue
                prefix = ".".join(base)
                target = f"{prefix}.{node.module}" if node.module else prefix
            else:
                target = node.module or ""
            if target == "repro" or target.startswith("repro."):
                yield target, node


class LayeringChecker(Checker):
    name = "layering"
    rules = (
        Rule("LY401", Severity.ERROR, "import violates the layer DAG"),
        Rule("LY402", Severity.ERROR, "repro.cli imported from outside the cli package"),
    )

    def check_module(self, source: ModuleSource) -> Iterator[Finding]:
        own_layer = _layer_of(source.module)
        facade = source.module == "repro"
        for target, node in _imported_repro_modules(source):
            target_layer = _layer_of(target)
            if target_layer == "cli" and own_layer != "cli":
                yield self.finding(
                    "LY402",
                    source,
                    node,
                    f"{source.module} imports {target}; the CLI is the "
                    "outermost shell and must not be imported as a library",
                )
                continue
            if facade:
                continue  # repro/__init__ is the public facade.
            if own_layer is None or target_layer is None or target_layer == own_layer:
                continue
            allowed = ALLOWED_IMPORTS.get(own_layer)
            if allowed is not None and target_layer not in allowed:
                yield self.finding(
                    "LY401",
                    source,
                    node,
                    f"layer '{own_layer}' must not import layer "
                    f"'{target_layer}' ({source.module} -> {target}); see "
                    "the DAG in repro.devtools.checkers.layering",
                )
