"""Determinism rules (DT3xx).

The repo's headline invariant is bit-identical output across execution
modes (serial vs. forked fleet vs. streaming).  Three statically
checkable ways to break it:

* **DT301** — drawing from the *unseeded* global RNG (``random.random()``,
  ``np.random.rand()``).  Seeded generator objects
  (``random.Random(seed)``, ``np.random.default_rng(seed)``) are fine;
  ``repro/trace/generator.py`` owns the repo's seeded RNG plumbing and is
  exempt.
* **DT302** — iterating a set into ordered output (``for x in {...}``,
  ``list(set(...))``, ``",".join(a_set)``): set order varies with hash
  seeding.  ``sorted(...)`` over a set is the sanctioned spelling.
* **DT303** — wall-clock reads inside ``repro/analysis/`` (the scoring
  path): decisions keyed to ``time.time()`` differ between runs.
  Monotonic/perf counters for *metrics* are allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding, Severity
from ..source import ModuleSource
from .base import Checker, Rule, call_name, calls_in

#: Functions on the global ``random`` module that draw from shared state.
_GLOBAL_RANDOM_ALLOWED = {"Random", "SystemRandom", "seed", "getstate", "setstate"}
_NP_RANDOM_ALLOWED = {"default_rng", "Generator", "SeedSequence", "RandomState", "seed"}
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
}
_GENERATOR_EXEMPT_SUFFIX = ("trace/generator.py",)


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and call_name(node) in {"set", "frozenset"}:
        return True
    # Binary set algebra over set literals/calls, e.g. set(a) - set(b).
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


class DeterminismChecker(Checker):
    name = "determinism"
    rules = (
        Rule("DT301", Severity.ERROR, "unseeded global RNG outside trace/generator.py"),
        Rule("DT302", Severity.ERROR, "set iteration feeding ordered output"),
        Rule("DT303", Severity.ERROR, "wall-clock read in the scoring path (repro/analysis/)"),
    )

    def check_module(self, source: ModuleSource) -> Iterator[Finding]:
        exempt_rng = source.display_path.endswith(_GENERATOR_EXEMPT_SUFFIX)
        in_analysis = "analysis" in source.display_path.replace("\\", "/").split("/")[:-1]
        for call in calls_in(source.tree):
            name = call_name(call)
            if name is None:
                continue
            if not exempt_rng:
                yield from self._check_global_rng(source, call, name)
            if in_analysis and name in _WALL_CLOCK:
                yield self.finding(
                    "DT303",
                    source,
                    call,
                    f"{name}() in the scoring path; wall-clock values differ "
                    "between runs and break bit-identical replay (use "
                    "time.monotonic/perf_counter for metrics)",
                )
        yield from self._check_set_ordering(source)

    # ------------------------------------------------------------------ #
    # DT301
    # ------------------------------------------------------------------ #
    def _check_global_rng(
        self, source: ModuleSource, call: ast.Call, name: str
    ) -> Iterator[Finding]:
        if name.startswith("random."):
            member = name.split(".", 1)[1]
            if "." not in member and member not in _GLOBAL_RANDOM_ALLOWED:
                yield self.finding(
                    "DT301",
                    source,
                    call,
                    f"{name}() draws from the unseeded global RNG; construct "
                    "a seeded random.Random(seed) instead",
                )
        elif name.startswith(("np.random.", "numpy.random.")):
            member = name.rsplit(".", 1)[1]
            if member not in _NP_RANDOM_ALLOWED:
                yield self.finding(
                    "DT301",
                    source,
                    call,
                    f"{name}() draws from numpy's unseeded global RNG; use "
                    "np.random.default_rng(seed)",
                )

    # ------------------------------------------------------------------ #
    # DT302
    # ------------------------------------------------------------------ #
    def _check_set_ordering(self, source: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expr(node.iter):
                yield self.finding(
                    "DT302",
                    source,
                    node.iter,
                    "iterating a set directly; order varies with hash "
                    "seeding — iterate sorted(...) instead",
                )
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if name in {"list", "tuple", "enumerate", "iter"} and node.args:
                    if _is_set_expr(node.args[0]):
                        yield self.finding(
                            "DT302",
                            source,
                            node,
                            f"{name}() over a set captures hash-seed order; "
                            "wrap the set in sorted(...)",
                        )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and node.args
                    and _is_set_expr(node.args[0])
                ):
                    yield self.finding(
                        "DT302",
                        source,
                        node,
                        "str.join over a set produces hash-seed-dependent "
                        "output; join sorted(...) instead",
                    )
