"""Config-knob validation parity (CK501).

Every configuration field the CLI actually wires up
(``SomeConfig(field=args.field, ...)`` in ``repro/cli/main.py``) must be
validated in that config class's ``__post_init__`` — i.e. ``self.field``
must be referenced there.  This keeps "CLI flag exists but garbage values
sail through to a crash three layers down" from reappearing every time a
knob is added: the parity is structural, so the checker fails the build
the moment a constructor kwarg has no validation.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding, Severity
from ..source import ModuleSource, Project
from .base import Checker, Rule, call_name, calls_in

_CLI_MODULE = "repro.cli.main"
_CONFIG_MODULE = "repro.config"


def _config_classes(source: ModuleSource) -> dict[str, ast.ClassDef]:
    classes: dict[str, ast.ClassDef] = {}
    for stmt in source.tree.body:
        if isinstance(stmt, ast.ClassDef) and stmt.name.endswith("Config"):
            classes[stmt.name] = stmt
    return classes


def _post_init_self_fields(klass: ast.ClassDef) -> set[str] | None:
    """Fields referenced as ``self.<field>`` in ``__post_init__``.

    Returns None when the class has no ``__post_init__`` at all.
    """
    for stmt in klass.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "__post_init__":
            fields: set[str] = set()
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                ):
                    fields.add(node.attr)
            return fields
    return None


def _cli_config_kwargs(source: ModuleSource) -> dict[str, list[tuple[str, ast.keyword]]]:
    """class name -> [(kwarg name, keyword node)] for *Config(...) calls."""
    usages: dict[str, list[tuple[str, ast.keyword]]] = {}
    for call in calls_in(source.tree):
        name = call_name(call)
        if name is None:
            continue
        base = name.split(".")[-1]
        if not base.endswith("Config"):
            continue
        for keyword in call.keywords:
            if keyword.arg is None:
                continue
            usages.setdefault(base, []).append((keyword.arg, keyword))
    return usages


class ConfigKnobChecker(Checker):
    name = "config-knobs"
    rules = (
        Rule(
            "CK501",
            Severity.ERROR,
            "config field wired in the CLI lacks __post_init__ validation",
        ),
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        by_module = project.by_module()
        cli = by_module.get(_CLI_MODULE)
        config = by_module.get(_CONFIG_MODULE)
        if cli is None or config is None:
            return
        classes = _config_classes(config)
        for class_name, kwargs in sorted(_cli_config_kwargs(cli).items()):
            klass = classes.get(class_name)
            if klass is None:
                continue
            validated = _post_init_self_fields(klass)
            missing = sorted(
                {field for field, _ in kwargs}
                - (validated if validated is not None else set())
            )
            for field in missing:
                if validated is None:
                    message = (
                        f"{class_name}.{field} is set from the CLI but "
                        f"{class_name} has no __post_init__ validation at all"
                    )
                else:
                    message = (
                        f"{class_name}.{field} is set from the CLI but never "
                        f"referenced in {class_name}.__post_init__; add a "
                        "_require(...) check so bad flag values fail fast"
                    )
                yield self.finding("CK501", config, klass, message)
