"""Checker registry: every rule family the driver runs."""

from __future__ import annotations

from .base import Checker, Rule
from .config_knobs import ConfigKnobChecker
from .dead_code import DeadCodeChecker
from .determinism import DeterminismChecker
from .fork_safety import ForkSafetyChecker
from .layering import LayeringChecker
from .thread_discipline import ThreadDisciplineChecker
from .typing_gate import TypingGateChecker

#: Instantiated checkers, in reporting order.
ALL_CHECKERS: tuple[Checker, ...] = (
    ForkSafetyChecker(),
    ThreadDisciplineChecker(),
    DeterminismChecker(),
    LayeringChecker(),
    ConfigKnobChecker(),
    DeadCodeChecker(),
    TypingGateChecker(),
)


def rule_catalogue() -> dict[str, Rule]:
    """rule id -> Rule, across every registered checker."""
    catalogue: dict[str, Rule] = {}
    for checker in ALL_CHECKERS:
        for rule in checker.rules:
            if rule.rule_id in catalogue:
                raise ValueError(f"duplicate rule id {rule.rule_id}")
            catalogue[rule.rule_id] = rule
    return catalogue


__all__ = [
    "ALL_CHECKERS",
    "Checker",
    "Rule",
    "rule_catalogue",
    "ConfigKnobChecker",
    "DeadCodeChecker",
    "DeterminismChecker",
    "ForkSafetyChecker",
    "LayeringChecker",
    "ThreadDisciplineChecker",
    "TypingGateChecker",
]
