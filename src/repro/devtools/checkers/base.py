"""Checker base class, rule metadata, and shared AST helpers."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..findings import Finding, Severity
from ..source import ModuleSource, Project


@dataclass(frozen=True)
class Rule:
    """One rule's catalogue entry (id, severity, summary)."""

    rule_id: str
    severity: Severity
    summary: str


class Checker:
    """Base class of every checker.

    Subclasses declare their :data:`rules` and implement
    :meth:`check_module` (per-file rules) and/or :meth:`check_project`
    (cross-file rules).  Both yield raw findings; the driver applies
    suppressions and the baseline afterwards.
    """

    name: str = "checker"
    rules: tuple[Rule, ...] = ()

    def check_module(self, source: ModuleSource) -> Iterator[Finding]:
        """Yield findings for one module (default: none)."""
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        """Yield cross-file findings (default: none)."""
        return iter(())

    # ------------------------------------------------------------------ #
    # Finding construction
    # ------------------------------------------------------------------ #
    def rule(self, rule_id: str) -> Rule:
        for rule in self.rules:
            if rule.rule_id == rule_id:
                return rule
        raise KeyError(f"{self.name} does not declare rule {rule_id}")

    def finding(
        self,
        rule_id: str,
        source: ModuleSource,
        node: ast.AST | int,
        message: str,
    ) -> Finding:
        """Build a finding at ``node`` (an AST node or a 1-based line)."""
        rule = self.rule(rule_id)
        if isinstance(node, int):
            line, column = node, 0
        else:
            line = getattr(node, "lineno", 1)
            column = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule_id,
            path=source.display_path,
            line=line,
            column=column,
            message=message,
            severity=rule.severity,
            source_line=source.line_text(line),
        )


# ---------------------------------------------------------------------- #
# Shared AST helpers
# ---------------------------------------------------------------------- #
def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """Dotted name of a call's callee, else None."""
    return dotted_name(node.func)


def receiver_name(node: ast.Attribute) -> str | None:
    """Identifier the attribute hangs off: ``x`` in ``x.get`` or
    ``queue`` in ``self.queue.get`` (the innermost non-self name)."""
    value = node.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return None


def walk_functions(
    tree: ast.AST,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def calls_in(node: ast.AST) -> Iterator[ast.Call]:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


def has_keyword(call: ast.Call, *names: str) -> bool:
    return any(kw.arg in names for kw in call.keywords)


def module_top_level_statements(tree: ast.Module) -> Iterable[ast.stmt]:
    """Statements executed at import time: the module body plus nested
    try/if/with/class bodies — everything except function bodies."""
    pending = list(tree.body)
    while pending:
        stmt = pending.pop(0)
        yield stmt
        if isinstance(stmt, ast.Try):
            pending.extend(stmt.body)
            for handler in stmt.handlers:
                pending.extend(handler.body)
            pending.extend(stmt.orelse)
            pending.extend(stmt.finalbody)
        elif isinstance(stmt, (ast.If, ast.With, ast.ClassDef)):
            pending.extend(stmt.body)
            if isinstance(stmt, ast.If):
                pending.extend(stmt.orelse)
