"""Thread and resource discipline rules (TD2xx).

The streaming/fleet planes lean on a small set of concurrency idioms —
``with lock:``, :class:`~repro.trace.pipeline.BoundedHandoff` for polling
queue traffic, threads joined in ``finally``, executors as context
managers — because a single leaked handle or blocked ``Queue.get`` stalls
an endurance run that is supposed to survive for days.  These rules keep
code on those idioms:

* **TD201** — ``lock.acquire()`` outside ``with`` and without a matching
  ``release()`` in a ``finally`` of the same function.
* **TD202** — blocking ``.get()``/``.put()`` on a queue-like receiver
  without a ``timeout``/``block=False`` escape hatch (uninterruptible on
  shutdown).  Sanctioned wrappers (``*Handoff`` classes) are exempt.
* **TD203** — a locally constructed thread is ``start()``-ed but never
  ``join()``-ed from a ``finally`` in the same function.
* **TD204** — an executor constructed without ``with`` and without a
  ``shutdown()`` call in the same function.
* **TD205** — ``open()`` outside ``with`` whose handle is not closed in a
  ``finally`` (handles stored on ``self`` of a class that defines
  ``close``/``__exit__`` are the object's lifecycle and exempt).
* **TD206** — in teardown methods (``close``/``shutdown``/``stop``/
  ``__exit__``), a flush-like call sequenced before a close-like call
  with no ``try``/``finally``: if the flush raises, the handle leaks and
  the object stays half-open.
* **TD207** — a cleanup loop in a ``finally`` whose per-item
  ``close``/``shutdown`` is unguarded: the first failing item leaks every
  item after it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding, Severity
from ..source import ModuleSource, enclosing_function, parent_of
from .base import (
    Checker,
    Rule,
    call_name,
    calls_in,
    has_keyword,
    receiver_name,
    walk_functions,
)

_EXECUTOR_NAMES = {"ProcessPoolExecutor", "ThreadPoolExecutor"}
_THREAD_NAMES = {"Thread", "Timer"}
_QUEUE_RECEIVER_HINTS = ("queue", "channel", "chan")
_SANCTIONED_CLASS_HINTS = ("handoff",)
_TEARDOWN_METHOD_NAMES = {"close", "shutdown", "stop", "__exit__", "__del__"}
_CLEANUP_CALL_SUFFIXES = (".close", ".shutdown", ".terminate", ".cancel_join_thread", ".kill")


def _base(name: str | None) -> str | None:
    return name.split(".")[-1] if name else None


def _enclosing_class(node: ast.AST) -> ast.ClassDef | None:
    current = parent_of(node)
    while current is not None:
        if isinstance(current, ast.ClassDef):
            return current
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A class defined inside a function still counts; keep climbing
            # only through functions that are not themselves class bodies.
            current = parent_of(current)
            continue
        current = parent_of(current)
    return None


def _in_with_context(call: ast.Call) -> bool:
    """Whether ``call`` is a ``with`` statement's context expression."""
    parent = parent_of(call)
    if isinstance(parent, ast.withitem):
        return True
    return False


def _finally_bodies(function: ast.AST) -> Iterator[ast.stmt]:
    for node in ast.walk(function):
        if isinstance(node, ast.Try):
            yield from node.finalbody


def _calls_in_finallies(function: ast.AST) -> Iterator[ast.Call]:
    for stmt in _finally_bodies(function):
        yield from calls_in(stmt)


def _guarded_by_try(node: ast.AST, stop: ast.AST) -> bool:
    """Whether ``node`` sits inside a Try (with handlers or finally)
    somewhere below ``stop`` in the tree."""
    current = parent_of(node)
    while current is not None and current is not stop:
        if isinstance(current, ast.Try) and (current.handlers or current.finalbody):
            return True
        current = parent_of(current)
    return False


class ThreadDisciplineChecker(Checker):
    name = "thread-discipline"
    rules = (
        Rule("TD201", Severity.ERROR, "lock.acquire() outside 'with' and without release in finally"),
        Rule("TD202", Severity.ERROR, "blocking queue get/put without timeout escape hatch"),
        Rule("TD203", Severity.ERROR, "thread started but not joined from a finally"),
        Rule("TD204", Severity.ERROR, "executor without 'with' or shutdown()"),
        Rule("TD205", Severity.ERROR, "open() outside 'with' without close in finally"),
        Rule("TD206", Severity.ERROR, "teardown method not exception-safe (flush before close without try/finally)"),
        Rule("TD207", Severity.ERROR, "cleanup loop where one failing item leaks the rest"),
    )

    def check_module(self, source: ModuleSource) -> Iterator[Finding]:
        yield from self._check_bare_acquire(source)
        yield from self._check_blocking_queue_ops(source)
        for function in walk_functions(source.tree):
            yield from self._check_threads_joined(source, function)
            yield from self._check_executor_lifecycle(source, function)
            yield from self._check_open_lifecycle(source, function)
            yield from self._check_cleanup_loops(source, function)
        yield from self._check_teardown_safety(source)

    # ------------------------------------------------------------------ #
    # TD201
    # ------------------------------------------------------------------ #
    def _check_bare_acquire(self, source: ModuleSource) -> Iterator[Finding]:
        for call in calls_in(source.tree):
            name = call_name(call)
            if name is None or not name.endswith(".acquire"):
                continue
            if _in_with_context(call):
                continue
            receiver = (
                receiver_name(call.func) if isinstance(call.func, ast.Attribute) else None
            )
            function = enclosing_function(call)
            released = False
            if function is not None and receiver is not None:
                for fin_call in _calls_in_finallies(function):
                    fin_name = call_name(fin_call)
                    if fin_name is None or not fin_name.endswith(".release"):
                        continue
                    fin_receiver = (
                        receiver_name(fin_call.func)
                        if isinstance(fin_call.func, ast.Attribute)
                        else None
                    )
                    if fin_receiver == receiver:
                        released = True
                        break
            if not released:
                yield self.finding(
                    "TD201",
                    source,
                    call,
                    f"{name}() without 'with' or a matching release() in a "
                    "finally; an exception here leaves the lock held",
                )

    # ------------------------------------------------------------------ #
    # TD202
    # ------------------------------------------------------------------ #
    def _check_blocking_queue_ops(self, source: ModuleSource) -> Iterator[Finding]:
        for call in calls_in(source.tree):
            if not isinstance(call.func, ast.Attribute):
                continue
            if call.func.attr not in {"get", "put"}:
                continue
            receiver = receiver_name(call.func)
            if receiver is None:
                continue
            lowered = receiver.lower()
            if not any(hint in lowered for hint in _QUEUE_RECEIVER_HINTS):
                continue
            if has_keyword(call, "timeout"):
                continue
            if call.args:
                # get(False) / put(item, False) style positional block flag,
                # or put(item) — only a bare zero-arg get() / one-arg put()
                # is unambiguously the blocking form for .put.
                if call.func.attr == "get":
                    continue
                if len(call.args) > 1:
                    continue
            if has_keyword(call, "block"):
                continue
            klass = _enclosing_class(call)
            if klass is not None and any(
                hint in klass.name.lower() for hint in _SANCTIONED_CLASS_HINTS
            ):
                continue
            yield self.finding(
                "TD202",
                source,
                call,
                f"blocking {receiver}.{call.func.attr}() without a timeout; "
                "use BoundedHandoff (or pass timeout=) so shutdown can "
                "interrupt the wait",
            )

    # ------------------------------------------------------------------ #
    # TD203
    # ------------------------------------------------------------------ #
    def _check_threads_joined(
        self, source: ModuleSource, function: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        thread_vars: dict[str, ast.Call] = {}
        for stmt in ast.walk(function):
            if not isinstance(stmt, ast.Assign) or not isinstance(stmt.value, ast.Call):
                continue
            name = call_name(stmt.value)
            if _base(name) not in _THREAD_NAMES:
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    thread_vars[target.id] = stmt.value
        if not thread_vars:
            return
        started: set[str] = set()
        for call in calls_in(function):
            if isinstance(call.func, ast.Attribute) and call.func.attr == "start":
                if isinstance(call.func.value, ast.Name) and call.func.value.id in thread_vars:
                    started.add(call.func.value.id)
        if not started:
            return
        joined: set[str] = set()
        for fin_call in _calls_in_finallies(function):
            if isinstance(fin_call.func, ast.Attribute) and fin_call.func.attr == "join":
                value = fin_call.func.value
                if isinstance(value, ast.Name):
                    joined.add(value.id)
                elif isinstance(value, ast.Attribute):
                    # e.g. handle.thread.join() — credit the handle name.
                    root = receiver_name(fin_call.func)
                    if root is not None:
                        joined.add(root)
        for var in sorted(started - joined):
            yield self.finding(
                "TD203",
                source,
                thread_vars[var],
                f"thread {var!r} is started but never joined from a finally "
                "in this function; an exception leaves it running",
            )

    # ------------------------------------------------------------------ #
    # TD204
    # ------------------------------------------------------------------ #
    def _check_executor_lifecycle(
        self, source: ModuleSource, function: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for call in calls_in(function):
            if _base(call_name(call)) not in _EXECUTOR_NAMES:
                continue
            if _in_with_context(call):
                continue
            parent = parent_of(call)
            bound: str | None = None
            if isinstance(parent, ast.Assign):
                for target in parent.targets:
                    if isinstance(target, ast.Name):
                        bound = target.id
            has_shutdown = False
            if bound is not None:
                for other in calls_in(function):
                    name = call_name(other)
                    if name == f"{bound}.shutdown":
                        has_shutdown = True
                        break
            if not has_shutdown:
                yield self.finding(
                    "TD204",
                    source,
                    call,
                    "executor created without 'with' and never shut down in "
                    "this function; worker processes/threads can outlive the "
                    "caller",
                )

    # ------------------------------------------------------------------ #
    # TD205
    # ------------------------------------------------------------------ #
    def _check_open_lifecycle(
        self, source: ModuleSource, function: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for call in calls_in(function):
            name = call_name(call)
            if name is None:
                continue
            if name != "open" and not name.endswith(".open"):
                continue
            if _in_with_context(call):
                continue
            parent = parent_of(call)
            if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
                target = parent.targets[0]
                if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
                    if target.value.id in {"self", "cls"}:
                        klass = _enclosing_class(call)
                        if klass is not None and self._class_has_teardown(klass):
                            continue
                if isinstance(target, ast.Name):
                    if self._closed_in_finally(function, target.id):
                        continue
            elif isinstance(parent, ast.withitem):
                continue
            elif isinstance(parent, ast.Return):
                # Factory functions hand the handle to the caller.
                continue
            yield self.finding(
                "TD205",
                source,
                call,
                "file handle opened without 'with' and not closed in a "
                "finally; an exception leaks the descriptor",
            )

    @staticmethod
    def _class_has_teardown(klass: ast.ClassDef) -> bool:
        for stmt in klass.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt.name in {"close", "__exit__", "__del__", "shutdown", "stop"}:
                    return True
        return False

    @staticmethod
    def _closed_in_finally(function: ast.AST, var: str) -> bool:
        for fin_call in _calls_in_finallies(function):
            name = call_name(fin_call)
            if name == f"{var}.close":
                return True
        return False

    # ------------------------------------------------------------------ #
    # TD206
    # ------------------------------------------------------------------ #
    def _check_teardown_safety(self, source: ModuleSource) -> Iterator[Finding]:
        for function in walk_functions(source.tree):
            if function.name not in _TEARDOWN_METHOD_NAMES:
                continue
            flushes: list[ast.Call] = []
            closes: list[ast.Call] = []
            for call in calls_in(function):
                name = call_name(call)
                if name is None:
                    continue
                base = _base(name) or ""
                if "flush" in base:
                    flushes.append(call)
                elif base in {"close", "shutdown", "terminate", "join"} and "." in name:
                    closes.append(call)
            for flush in flushes:
                later_closes = [c for c in closes if c.lineno > flush.lineno]
                if not later_closes:
                    continue
                if _guarded_by_try(flush, function):
                    continue
                yield self.finding(
                    "TD206",
                    source,
                    flush,
                    f"{function.name}() calls {call_name(flush)}() before "
                    f"{call_name(later_closes[0])}() with no try/finally; a "
                    "flush failure skips the close and leaks the handle",
                )

    # ------------------------------------------------------------------ #
    # TD207
    # ------------------------------------------------------------------ #
    def _check_cleanup_loops(
        self, source: ModuleSource, function: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for try_node in ast.walk(function):
            if not isinstance(try_node, ast.Try):
                continue
            for stmt in try_node.finalbody:
                for loop in ast.walk(stmt):
                    if not isinstance(loop, (ast.For, ast.While)):
                        continue
                    reported = False
                    for call in calls_in(loop):
                        name = call_name(call)
                        if name is None or not name.endswith(_CLEANUP_CALL_SUFFIXES):
                            continue
                        if _guarded_by_try(call, loop):
                            continue
                        if not reported:
                            reported = True
                            yield self.finding(
                                "TD207",
                                source,
                                call,
                                f"unguarded {name}() inside a cleanup loop in "
                                "a finally; the first failing item leaks "
                                "every item after it",
                            )
