"""Fork-safety rules.

The parallel fleet backend forks worker processes (where the ``fork``
start method is the platform default) and deliberately passes bulk data
through inherited module globals (:data:`repro.analysis.parallel._SHARD_WINDOWS`
and friends).  That design is sound only under discipline:

* **FS101** — no thread may be running, no lock held, no pool constructed
  at *import time*: any module imported before the fleet forks would
  poison every worker.
* **FS102** — a module-level global that functions rebind (``global X``)
  is process-shared state that crosses ``fork`` silently; each one must
  be declared intentional with a ``# repro: fork-shared`` marker comment
  on its module-level assignment (or suppressed), so fork-visible state
  is enumerable by grep.
* **FS103** — in a function that creates a :class:`ProcessPoolExecutor`,
  threads must be started only *after* the last ``submit`` call: workers
  fork at first submission, and forking with live threads can snapshot
  held locks into the child (the PR 7 feeder-thread rule).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding, Severity
from ..source import ModuleSource
from .base import (
    Checker,
    Rule,
    call_name,
    calls_in,
    module_top_level_statements,
    walk_functions,
)

_POOL_NAMES = {"ProcessPoolExecutor", "ThreadPoolExecutor", "Pool"}
_THREAD_NAMES = {"Thread", "Timer"}


def _base_name(name: str | None) -> str | None:
    return name.split(".")[-1] if name else None


class ForkSafetyChecker(Checker):
    name = "fork-safety"
    rules = (
        Rule(
            "FS101",
            Severity.ERROR,
            "no threads started, locks acquired or pools created at import time",
        ),
        Rule(
            "FS102",
            Severity.ERROR,
            "module-level globals rebound by functions must carry a "
            "'# repro: fork-shared' marker",
        ),
        Rule(
            "FS103",
            Severity.ERROR,
            "threads must start after the last pool.submit when a "
            "ProcessPoolExecutor is created (workers fork at first submission)",
        ),
    )

    def check_module(self, source: ModuleSource) -> Iterator[Finding]:
        yield from self._check_import_time(source)
        yield from self._check_fork_shared_globals(source)
        yield from self._check_start_before_submit(source)

    # ------------------------------------------------------------------ #
    # FS101
    # ------------------------------------------------------------------ #
    def _check_import_time(self, source: ModuleSource) -> Iterator[Finding]:
        for stmt in module_top_level_statements(source.tree):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for call in calls_in(stmt):
                name = call_name(call)
                base = _base_name(name)
                if base in _THREAD_NAMES and (
                    name in _THREAD_NAMES or name.startswith(("threading.", "multiprocessing."))
                ):
                    yield self.finding(
                        "FS101",
                        source,
                        call,
                        f"thread constructed at import time ({name}); forked "
                        "workers would inherit it mid-flight",
                    )
                elif base in _POOL_NAMES and base != "Pool":
                    yield self.finding(
                        "FS101",
                        source,
                        call,
                        f"executor created at import time ({name})",
                    )
                elif name == "multiprocessing.Pool":
                    yield self.finding(
                        "FS101", source, call, "process pool created at import time"
                    )
                elif name is not None and name.endswith(".acquire"):
                    yield self.finding(
                        "FS101",
                        source,
                        call,
                        f"lock acquired at import time ({name}); a fork would "
                        "inherit it held",
                    )

    # ------------------------------------------------------------------ #
    # FS102
    # ------------------------------------------------------------------ #
    def _check_fork_shared_globals(self, source: ModuleSource) -> Iterator[Finding]:
        rebound: set[str] = set()
        for function in walk_functions(source.tree):
            for stmt in ast.walk(function):
                if isinstance(stmt, ast.Global):
                    rebound.update(stmt.names)
        if not rebound:
            return
        reported: set[str] = set()
        for stmt in source.tree.body:
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if not isinstance(target, ast.Name) or target.id not in rebound:
                    continue
                if target.id in reported:
                    continue
                end = getattr(stmt, "end_lineno", stmt.lineno)
                markers = source.suppressions.markers_on(stmt.lineno, end)
                if "fork-shared" in markers:
                    continue
                reported.add(target.id)
                yield self.finding(
                    "FS102",
                    source,
                    stmt,
                    f"module global {target.id!r} is rebound from function "
                    "scope and crosses fork boundaries undeclared; annotate "
                    "the assignment with '# repro: fork-shared' if intended",
                )

    # ------------------------------------------------------------------ #
    # FS103
    # ------------------------------------------------------------------ #
    def _check_start_before_submit(self, source: ModuleSource) -> Iterator[Finding]:
        for function in walk_functions(source.tree):
            creates_pool = False
            submit_lines: list[int] = []
            starts: list[ast.Call] = []
            for call in calls_in(function):
                name = call_name(call)
                base = _base_name(name)
                if base == "ProcessPoolExecutor":
                    creates_pool = True
                elif name is not None and name.endswith(".submit"):
                    submit_lines.append(call.lineno)
                elif name is not None and name.endswith(".start"):
                    starts.append(call)
            if not creates_pool or not submit_lines or not starts:
                continue
            last_submit = max(submit_lines)
            for call in starts:
                if call.lineno < last_submit:
                    yield self.finding(
                        "FS103",
                        source,
                        call,
                        "thread started before the pool's last submit call; "
                        "fork-context workers fork at first submission and "
                        "could snapshot the thread's held locks",
                    )
