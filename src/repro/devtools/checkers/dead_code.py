"""Dead-code rules (DC6xx).

* **DC601** — a module-level function, class, or constant that nothing in
  the project references.  References are counted across *all* loaded
  trees, including usage-only roots (tests, benchmarks, examples), so a
  helper consumed only by the tier-1 suite is live.  Matching is by name
  (``Name`` loads, attribute accesses, ``from x import y``, ``__all__``
  strings), which over-approximates liveness — anything this rule flags
  really has no textual consumer anywhere.
* **DC602** — an import binding never used in its module.  ``__init__.py``
  re-export hubs, ``__all__`` members and ``from __future__`` imports are
  exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding, Severity
from ..source import ModuleSource, Project
from .base import Checker, Rule

_DUNDER_EXEMPT = {"main"}


def _string_elements(node: ast.AST) -> Iterator[str]:
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                yield element.value


def _dunder_all(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for stmt in tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AugAssign):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                names |= set(_string_elements(stmt.value))
    return names


def _definition_nodes(tree: ast.Module) -> dict[str, ast.stmt]:
    """name -> defining statement, for top-level defs/classes/constants."""
    defs: dict[str, ast.stmt] = {}
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defs[stmt.name] = stmt
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    defs[target.id] = stmt
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            defs[stmt.target.id] = stmt
    return defs


def _references(tree: ast.Module) -> set[str]:
    """Every name textually referenced in ``tree``.

    Counts Name loads, attribute accesses, ``from x import y`` names,
    keyword-argument names, and ``__all__`` strings (re-export by string).
    """
    refs: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                refs.add(node.id)
        elif isinstance(node, ast.Attribute):
            refs.add(node.attr)
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                refs.add(alias.name)
        elif isinstance(node, ast.keyword) and node.arg:
            refs.add(node.arg)
    refs |= _dunder_all(tree)
    return refs


def _import_bindings(tree: ast.Module) -> dict[str, tuple[ast.stmt, str]]:
    """binding name -> (import statement, imported thing's description)."""
    bindings: dict[str, tuple[ast.stmt, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                bindings[bound] = (node, alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                bindings[bound] = (node, f"{node.module or '.'}.{alias.name}")
    return bindings


class DeadCodeChecker(Checker):
    name = "dead-code"
    rules = (
        Rule("DC601", Severity.WARNING, "top-level symbol referenced nowhere in the project"),
        Rule("DC602", Severity.WARNING, "import binding unused in its module"),
    )

    # ------------------------------------------------------------------ #
    # DC601 (project-wide)
    # ------------------------------------------------------------------ #
    def check_project(self, project: Project) -> Iterator[Finding]:
        # One pass: references per module, then union-minus-self per module.
        refs_by_module: dict[str, set[str]] = {}
        for source in project:
            refs_by_module[source.display_path] = _references(source.tree)
        for source in project.checked_modules():
            if source.path.name == "__init__.py":
                continue  # __init__ bindings are the package's public API.
            exported = _dunder_all(source.tree)
            definitions = _definition_nodes(source.tree)
            external_refs: set[str] = set()
            for path, refs in refs_by_module.items():
                if path != source.display_path:
                    external_refs |= refs
            internal_refs = self._internal_uses(source.tree, set(definitions))
            for name in sorted(definitions):
                if name.startswith("__") or name in _DUNDER_EXEMPT:
                    continue
                if name in exported or name in external_refs or name in internal_refs:
                    continue
                stmt = definitions[name]
                yield self.finding(
                    "DC601",
                    source,
                    stmt,
                    f"{name!r} is defined here but referenced nowhere in the "
                    "project (including tests/benchmarks); delete it or "
                    "export it",
                )

    @staticmethod
    def _internal_uses(tree: ast.Module, definitions: set[str]) -> set[str]:
        """Names among ``definitions`` used inside this module, excluding
        each definition's own body (so a function used only by itself is
        still dead)."""
        defined_stmts: dict[str, ast.stmt] = {}
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                defined_stmts[stmt.name] = stmt
        uses: set[str] = set()
        for stmt in tree.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                    if node.id in definitions:
                        owner = defined_stmts.get(node.id)
                        if owner is stmt:
                            continue  # self-reference (recursion/decorator arg)
                        uses.add(node.id)
                elif isinstance(node, ast.Attribute) and node.attr in definitions:
                    uses.add(node.attr)
        uses |= _dunder_all(tree)
        return uses

    # ------------------------------------------------------------------ #
    # DC602 (per-module)
    # ------------------------------------------------------------------ #
    def check_module(self, source: ModuleSource) -> Iterator[Finding]:
        if source.path.name == "__init__.py":
            return  # re-export hub by design
        exported = _dunder_all(source.tree)
        bindings = _import_bindings(source.tree)
        if not bindings:
            return
        used: set[str] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                used.add(node.id)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                # String annotations ("TraceWindow") under
                # `from __future__ import annotations`, and docstrings —
                # over-approximate rather than flag a live typing import.
                used |= {part for part in _split_words(node.value) if part in bindings}
        for name in sorted(bindings):
            if name in used or name in exported or name.startswith("_"):
                continue
            stmt, description = bindings[name]
            yield self.finding(
                "DC602",
                source,
                stmt,
                f"import {description!s} is bound as {name!r} but never used "
                "in this module",
            )


def _split_words(text: str) -> Iterator[str]:
    word: list[str] = []
    for char in text:
        if char.isalnum() or char == "_":
            word.append(char)
        elif word:
            yield "".join(word)
            word = []
    if word:
        yield "".join(word)
