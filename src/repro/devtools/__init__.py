"""Repo-native static analysis for the ``repro`` codebase.

The runtime grew concurrency-heavy (fork/spawn worker pools, feeder
threads, bounded hand-off queues, fork-inherited module globals) and its
headline guarantee — bit-identical decisions, reports and recorded bytes
across every execution mode — was until now enforced only dynamically, by
the tier-1 suite.  This package proves the underlying invariants
*statically*: each rule encodes one repo-specific hazard (a thread started
before a fork-context pool submission, an unseeded random source in a
scoring path, a layering violation, an unvalidated config knob reaching the
CLI) and fires on every diff, the way a type checker fires on a type error.

Everything here is stdlib-only (:mod:`ast`, :mod:`tokenize`, :mod:`json`)
so the checkers run in any environment the library itself runs in — no new
runtime dependencies.

Usage::

    python -m repro.devtools.check src/repro            # text report
    python -m repro.devtools.check --json src/repro     # machine-readable
    python -m repro.devtools.check --list-rules         # rule catalogue

Suppressions:

* ``# repro: ignore[RULE1,RULE2]`` on the offending line silences those
  rules for that line; bare ``# repro: ignore`` silences every rule.
* ``# repro: ignore-file[RULE]`` in the first 25 lines of a module
  silences a rule for the whole file.
* ``# repro: fork-shared`` on a module-level mutable global declares it as
  an intentional fork-inheritance staging area (rule FS102).

A committed baseline (:mod:`repro.devtools.baseline`) grandfathers
pre-existing findings: the driver exits nonzero only on findings that are
*not* in the baseline, so the gate can be adopted without a flag day.
"""

from __future__ import annotations

from .findings import Finding, Severity

__all__ = ["Finding", "Severity"]
