"""repro — reproduction of "Reducing trace size in multimedia applications
endurance tests" (DATE 2015).

The library has three layers:

* **Substrates** — :mod:`repro.trace` (events, windows, codecs, IO),
  :mod:`repro.platform` (discrete-event MPSoC simulator) and
  :mod:`repro.media` (GStreamer-like decoding pipeline, perturbations, QoS
  errors).  Together they stand in for the paper's real hardware + GStreamer
  setup and produce realistic endurance-test traces.
* **Analysis** — :mod:`repro.analysis`: the paper's contribution (pmf
  abstraction, Kullback-Leibler gate, Local Outlier Factor, online monitor,
  selective recorder) plus the evaluation protocol (labelling, metrics),
  baselines and the periodicity extension.
* **Batch scoring plane** — a vectorized fast path cutting across the trace
  and analysis layers: :class:`~repro.trace.batch.WindowBatch` stores a
  micro-batch of windows columnar (int32 event codes + CSR offsets),
  :func:`~repro.analysis.pmf.pmf_matrix` turns it into a counts matrix with
  one ``bincount``, and
  :meth:`~repro.analysis.detector.OnlineAnomalyDetector.process_batch`
  applies the KL gate and batched LOF with decisions identical to the
  per-window path (``MonitorConfig(batch_size=...)`` enables it end-to-end).
* **Columnar ingest plane** — the scoring plane's mirror on the input side:
  :class:`~repro.trace.columns.TraceColumns` holds a whole trace as flat
  arrays (vectorized ``decode_columns`` on both codecs), array-native
  windowing cuts it with ``searchsorted``/strided offsets straight into
  lazy :class:`~repro.trace.batch.WindowBatch` micro-batches
  (:func:`~repro.trace.reader.read_trace_columns`,
  :func:`~repro.trace.reader.iter_window_batches`), and a bounded
  producer/consumer hand-off overlaps decode with scoring
  (:meth:`~repro.analysis.monitor.TraceMonitor.run_on_file`) — results are
  bit-identical to the object path.
* **Experiments** — :mod:`repro.experiments`: the endurance experiment of
  the paper's Section III, parameter sweeps and plain-text reports; the
  benchmarks under ``benchmarks/`` drive these to regenerate the paper's
  figure and headline numbers.

Quickstart::

    from repro import EnduranceConfig, run_endurance_experiment

    config = EnduranceConfig.scaled_paper_setup(duration_s=900.0)
    result = run_endurance_experiment(config)
    print(result.metrics.precision, result.metrics.recall)
    print(result.monitor_result.report.reduction_factor)
"""

from .version import __version__
from .errors import (
    ConfigurationError,
    ExperimentError,
    LabelingError,
    ModelError,
    NotFittedError,
    PipelineError,
    RecorderError,
    ReproError,
    SimulationError,
    TraceFormatError,
    TraceStreamError,
)
from .config import (
    DetectorConfig,
    EnduranceConfig,
    MediaConfig,
    MonitorConfig,
    PerturbationConfig,
    PlatformConfig,
    load_config,
    save_config,
)
from .trace import (
    ColumnarWindowSource,
    EventType,
    EventTypeRegistry,
    TraceColumns,
    TraceEvent,
    TraceStream,
    TraceWindow,
    WindowBatch,
    batch_windows,
    iter_window_batches,
    read_trace,
    read_trace_columns,
    write_trace,
)
from .analysis import (
    FleetResult,
    LocalOutlierFactor,
    MonitorResult,
    OnlineAnomalyDetector,
    Pmf,
    ReferenceDatabase,
    ReferenceModel,
    SelectiveTraceRecorder,
    ShardedTraceMonitor,
    TraceMonitor,
    compute_metrics,
    kl_divergence,
    pmf_matrix,
    symmetric_kl_divergence,
)
from .media import EnduranceRun, EnduranceTrace
from .experiments import (
    EnduranceExperimentResult,
    FleetEnduranceResult,
    alpha_sweep,
    run_endurance_experiment,
    run_fleet_endurance_experiment,
)

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "TraceFormatError",
    "TraceStreamError",
    "SimulationError",
    "PipelineError",
    "ModelError",
    "NotFittedError",
    "LabelingError",
    "RecorderError",
    "ExperimentError",
    # configuration
    "DetectorConfig",
    "MonitorConfig",
    "PlatformConfig",
    "MediaConfig",
    "PerturbationConfig",
    "EnduranceConfig",
    "load_config",
    "save_config",
    # trace substrate
    "EventType",
    "EventTypeRegistry",
    "TraceEvent",
    "TraceWindow",
    "TraceStream",
    "TraceColumns",
    "ColumnarWindowSource",
    "WindowBatch",
    "batch_windows",
    "read_trace",
    "read_trace_columns",
    "iter_window_batches",
    "write_trace",
    # analysis
    "Pmf",
    "pmf_matrix",
    "kl_divergence",
    "symmetric_kl_divergence",
    "LocalOutlierFactor",
    "ReferenceModel",
    "ReferenceDatabase",
    "OnlineAnomalyDetector",
    "TraceMonitor",
    "MonitorResult",
    "ShardedTraceMonitor",
    "FleetResult",
    "SelectiveTraceRecorder",
    "compute_metrics",
    # media / experiments
    "EnduranceRun",
    "EnduranceTrace",
    "EnduranceExperimentResult",
    "FleetEnduranceResult",
    "run_endurance_experiment",
    "run_fleet_endurance_experiment",
    "alpha_sweep",
]
